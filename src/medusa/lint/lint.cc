#include "medusa/lint/lint.h"

#include <cstdio>
#include <sstream>

namespace medusa::core::lint {

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::kInfo: return "info";
      case Severity::kWarning: return "warning";
      case Severity::kError: return "error";
    }
    return "unknown";
}

u64
LintReport::errorCount() const
{
    u64 n = 0;
    for (const Diagnostic &d : diagnostics) {
        if (d.severity == Severity::kError) {
            ++n;
        }
    }
    return n;
}

u64
LintReport::warningCount() const
{
    u64 n = 0;
    for (const Diagnostic &d : diagnostics) {
        if (d.severity == Severity::kWarning) {
            ++n;
        }
    }
    return n;
}

std::string
LintReport::toText() const
{
    std::ostringstream out;
    for (const Diagnostic &d : diagnostics) {
        out << severityName(d.severity) << " " << d.rule << " "
            << d.location << ": " << d.message;
        if (!d.fix_hint.empty()) {
            out << " [fix: " << d.fix_hint << "]";
        }
        out << "\n";
    }
    out << diagnostics.size() << " diagnostic(s): " << errorCount()
        << " error(s), " << warningCount() << " warning(s)\n";
    return out.str();
}

namespace {

void
appendJsonString(std::ostringstream &out, const std::string &s)
{
    out << '"';
    for (char c : s) {
        switch (c) {
          case '"': out << "\\\""; break;
          case '\\': out << "\\\\"; break;
          case '\n': out << "\\n"; break;
          case '\t': out << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out << buf;
            } else {
                out << c;
            }
        }
    }
    out << '"';
}

} // namespace

std::string
LintReport::toJson() const
{
    std::ostringstream out;
    out << "{\"schema_version\":" << kLintJsonSchemaVersion
        << ",\"diagnostics\":[";
    for (std::size_t i = 0; i < diagnostics.size(); ++i) {
        const Diagnostic &d = diagnostics[i];
        if (i > 0) {
            out << ",";
        }
        out << "{\"rule\":";
        appendJsonString(out, d.rule);
        out << ",\"severity\":";
        appendJsonString(out, severityName(d.severity));
        out << ",\"location\":";
        appendJsonString(out, d.location);
        out << ",\"message\":";
        appendJsonString(out, d.message);
        out << ",\"fix_hint\":";
        appendJsonString(out, d.fix_hint);
        out << "}";
    }
    out << "],\"errors\":" << errorCount()
        << ",\"warnings\":" << warningCount() << "}";
    return out.str();
}

std::string
LintReport::firstError() const
{
    for (const Diagnostic &d : diagnostics) {
        if (d.severity == Severity::kError) {
            return d.rule + " " + d.location + ": " + d.message;
        }
    }
    return "";
}

void
LintReport::merge(LintReport other)
{
    diagnostics.insert(diagnostics.end(),
                       std::make_move_iterator(other.diagnostics.begin()),
                       std::make_move_iterator(other.diagnostics.end()));
}

} // namespace medusa::core::lint
