#include "medusa/lint/lint.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace medusa::core::lint {

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::kInfo: return "info";
      case Severity::kWarning: return "warning";
      case Severity::kError: return "error";
    }
    return "unknown";
}

u64
LintReport::errorCount() const
{
    u64 n = 0;
    for (const Diagnostic &d : diagnostics) {
        if (d.severity == Severity::kError) {
            ++n;
        }
    }
    return n;
}

u64
LintReport::warningCount() const
{
    u64 n = 0;
    for (const Diagnostic &d : diagnostics) {
        if (d.severity == Severity::kWarning) {
            ++n;
        }
    }
    return n;
}

std::string
LintReport::toText() const
{
    std::ostringstream out;
    for (const Diagnostic &d : diagnostics) {
        out << severityName(d.severity) << " " << d.rule << " "
            << d.location << ": " << d.message;
        if (!d.fix_hint.empty()) {
            out << " [fix: " << d.fix_hint << "]";
        }
        out << "\n";
    }
    out << diagnostics.size() << " diagnostic(s): " << errorCount()
        << " error(s), " << warningCount() << " warning(s)\n";
    return out.str();
}

namespace {

void
appendJsonString(std::ostringstream &out, const std::string &s)
{
    out << '"';
    for (char c : s) {
        switch (c) {
          case '"': out << "\\\""; break;
          case '\\': out << "\\\\"; break;
          case '\n': out << "\\n"; break;
          case '\t': out << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out << buf;
            } else {
                out << c;
            }
        }
    }
    out << '"';
}

} // namespace

std::string
LintReport::toJson() const
{
    std::ostringstream out;
    out << "{\"schema_version\":" << kLintJsonSchemaVersion
        << ",\"diagnostics\":[";
    for (std::size_t i = 0; i < diagnostics.size(); ++i) {
        const Diagnostic &d = diagnostics[i];
        if (i > 0) {
            out << ",";
        }
        out << "{\"rule\":";
        appendJsonString(out, d.rule);
        out << ",\"severity\":";
        appendJsonString(out, severityName(d.severity));
        out << ",\"location\":";
        appendJsonString(out, d.location);
        out << ",\"message\":";
        appendJsonString(out, d.message);
        out << ",\"fix_hint\":";
        appendJsonString(out, d.fix_hint);
        out << "}";
    }
    out << "],\"errors\":" << errorCount()
        << ",\"warnings\":" << warningCount() << "}";
    return out.str();
}

const char *
ruleSummary(const std::string &rule)
{
    struct Entry
    {
        const char *id;
        const char *text;
    };
    static constexpr Entry kCatalog[] = {
        {"MDL101", "double free in the allocation sequence"},
        {"MDL102", "free of a not-yet-existing allocation index"},
        {"MDL103", "replayed free of an organic allocation"},
        {"MDL104", "impossible allocation size"},
        {"MDL105", "replay boundary out of range"},
        {"MDL201", "indirect index beyond the allocation sequence"},
        {"MDL202", "stale pointer: referenced allocation freed before "
                   "the launch"},
        {"MDL203", "interior pointer offset outside its allocation"},
        {"MDL301", "kernel name missing from the module registry"},
        {"MDL302", "kernel recorded in the wrong module"},
        {"MDL303", "graph edge endpoint out of range"},
        {"MDL304", "duplicate blueprint for one batch size"},
        {"MDL401", "pointer-shaped permanent word without a fix"},
        {"MDL402", "invalid PointerWordFix record"},
        {"MDL403", "invalid permanent-buffer record"},
        {"MDL501", "free-memory figure not reproducible"},
        {"MDL502", "free-memory figure exceeds device capacity"},
        {"MDL601", "cross-rank artifact identity divergence"},
        {"MDL602", "cross-rank batch-size set divergence"},
        {"MDL603", "cross-rank graph topology divergence"},
        {"MDL604", "cross-rank collective ordering divergence"},
        {"MDL700", "image bytes fail to decode"},
        {"MDL701", "data relocation out of bounds"},
        {"MDL702", "data relocation targets a freed allocation"},
        {"MDL703", "kernel relocation out of bounds"},
        {"MDL704", "overlapping relocations on one template slot"},
        {"MDL705", "patch-coverage gap: run-specific slot not covered "
                   "by a relocation"},
        {"MDL706", "kernel table violates first-occurrence order"},
        {"MDL707", "relocation domain/type mismatch"},
        {"MDL708", "trailing undecoded payload bytes"},
        {"MDL709", "misaligned data-relocation addend"},
        {"MDL801", "write-write race between unordered graph nodes"},
        {"MDL802", "read-write race between unordered graph nodes"},
        {"MDL803", "allocation op interleaves a graph capture window"},
        {"MDL804", "unordered pair with unknown kernel effects"},
    };
    for (const Entry &e : kCatalog) {
        if (rule == e.id) {
            return e.text;
        }
    }
    return "";
}

std::string
LintReport::toSarif() const
{
    // Minimal SARIF 2.1.0: one run, logical locations (an artifact /
    // image has no file/line coordinates), rule metadata for every
    // rule that fired.
    auto level = [](Severity s) {
        switch (s) {
          case Severity::kInfo: return "note";
          case Severity::kWarning: return "warning";
          case Severity::kError: return "error";
        }
        return "none";
    };
    std::vector<std::string> rule_ids;
    for (const Diagnostic &d : diagnostics) {
        if (std::find(rule_ids.begin(), rule_ids.end(), d.rule) ==
            rule_ids.end()) {
            rule_ids.push_back(d.rule);
        }
    }
    std::ostringstream out;
    out << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json"
           "\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":"
           "{\"name\":\"medusa-lint\",\"informationUri\":"
           "\"DESIGN.md\",\"rules\":[";
    for (std::size_t i = 0; i < rule_ids.size(); ++i) {
        if (i > 0) {
            out << ",";
        }
        out << "{\"id\":";
        appendJsonString(out, rule_ids[i]);
        out << ",\"shortDescription\":{\"text\":";
        appendJsonString(out, ruleSummary(rule_ids[i]));
        out << "}}";
    }
    out << "]}},\"results\":[";
    for (std::size_t i = 0; i < diagnostics.size(); ++i) {
        const Diagnostic &d = diagnostics[i];
        if (i > 0) {
            out << ",";
        }
        out << "{\"ruleId\":";
        appendJsonString(out, d.rule);
        out << ",\"level\":";
        appendJsonString(out, level(d.severity));
        std::string text = d.message;
        if (!d.fix_hint.empty()) {
            text += " [fix: " + d.fix_hint + "]";
        }
        out << ",\"message\":{\"text\":";
        appendJsonString(out, text);
        out << "},\"locations\":[{\"logicalLocations\":[{"
               "\"fullyQualifiedName\":";
        appendJsonString(out, d.location);
        out << "}]}]}";
    }
    out << "]}]}";
    return out.str();
}

std::string
LintReport::firstError() const
{
    for (const Diagnostic &d : diagnostics) {
        if (d.severity == Severity::kError) {
            return d.rule + " " + d.location + ": " + d.message;
        }
    }
    return "";
}

void
LintReport::merge(LintReport other)
{
    diagnostics.insert(diagnostics.end(),
                       std::make_move_iterator(other.diagnostics.begin()),
                       std::make_move_iterator(other.diagnostics.end()));
}

} // namespace medusa::core::lint
