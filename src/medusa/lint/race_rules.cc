/**
 * @file
 * MDL8xx: determinism / race analysis of captured graphs (lint.h
 * family overview; DESIGN.md §14).
 *
 * A captured graph's dependency edges ARE the happens-before relation
 * of the capture (every stream/event ordering is materialized as an
 * edge), so two nodes with no path between them genuinely ran
 * unordered. If such a pair touches the same buffer and at least one
 * writes, the captured bytes — and therefore the materialized
 * permanent contents and every replay — depend on scheduler luck at
 * capture time. Single-stream captures are total orders and trivially
 * race-free; these rules only speak up on multi-stream captures.
 */

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "medusa/lint/analysis.h"
#include "medusa/lint/lint.h"
#include "medusa/record.h"

namespace medusa::core::lint::detail {

namespace {

void
emit(LintReport &report, const char *rule, Severity severity,
     std::string location, std::string message, std::string fix_hint)
{
    report.diagnostics.push_back({rule, severity, std::move(location),
                                  std::move(message),
                                  std::move(fix_hint)});
}

std::string
pairLoc(const std::string &prefix, u32 a, u32 b)
{
    return prefix + ".node[" + std::to_string(a) + "]/node[" +
           std::to_string(b) + "]";
}

} // namespace

void
checkGraphRaces(const RaceGraph &graph, const std::string &location_prefix,
                LintReport &report)
{
    const std::size_t n = graph.node_count;
    if (n < 2) {
        return;
    }
    const HappensBefore hb(n, std::span<const simcuda::GraphEdge>(
                                  graph.edges.data(), graph.edges.size()));
    if (hb.totalOrder()) {
        return; // single-stream capture chain: every pair is ordered
    }

    // Group accesses by buffer so conflict checks only visit pairs that
    // actually share an allocation.
    struct Access
    {
        u32 node = 0;
        u64 param = 0;
        simcuda::ParamAccess access = simcuda::ParamAccess::kNone;
    };
    std::map<u64, std::vector<Access>> by_alloc;
    for (u32 ni = 0; ni < graph.nodes.size() && ni < n; ++ni) {
        for (const BufferAccess &b : graph.nodes[ni].buffers) {
            by_alloc[b.alloc_index].push_back({ni, b.param, b.access});
        }
    }

    for (const auto &[alloc_index, accesses] : by_alloc) {
        for (std::size_t i = 0; i < accesses.size(); ++i) {
            for (std::size_t j = i + 1; j < accesses.size(); ++j) {
                const Access &x = accesses[i];
                const Access &y = accesses[j];
                if (x.node == y.node || hb.ordered(x.node, y.node)) {
                    continue;
                }
                const bool xw = simcuda::accessWrites(x.access);
                const bool yw = simcuda::accessWrites(y.access);
                if (!xw && !yw) {
                    continue; // read-read: order-independent
                }
                const u32 a = std::min(x.node, y.node);
                const u32 b = std::max(x.node, y.node);
                const std::string who =
                    graph.nodes[a].kernel_name + " and " +
                    graph.nodes[b].kernel_name;
                if (xw && yw) {
                    emit(report, "MDL801", Severity::kError,
                         pairLoc(location_prefix, a, b),
                         "write-write race on allocation " +
                             std::to_string(alloc_index) + ": " + who +
                             " both write it with no happens-before "
                             "edge between them; the captured bytes "
                             "depend on capture-time scheduling",
                         "order the streams with a recorded event, or "
                         "give each branch its own buffer");
                } else {
                    emit(report, "MDL802", Severity::kError,
                         pairLoc(location_prefix, a, b),
                         "read-write race on allocation " +
                             std::to_string(alloc_index) + ": " + who +
                             " access it unordered and one writes; "
                             "the reader may see either version "
                             "depending on capture-time scheduling",
                         "join the writer's stream into the reader's "
                         "with an event before the read");
                }
            }
        }
    }

    // Nodes whose effects are unknown (foreign kernel, no access
    // metadata, or indirect pointer-chasing) cannot be proven race-free
    // against anything unordered with them. One advisory per node.
    for (u32 ni = 0; ni < graph.nodes.size() && ni < n; ++ni) {
        const NodeAccess &node = graph.nodes[ni];
        if (node.known && !node.indirect) {
            continue;
        }
        for (u32 other = 0; other < n; ++other) {
            if (other == ni || hb.ordered(ni, other)) {
                continue;
            }
            emit(report, "MDL804", Severity::kWarning,
                 location_prefix + ".node[" + std::to_string(ni) + "]",
                 "kernel " + node.kernel_name +
                     (node.indirect
                          ? " dereferences pointers stored inside its "
                            "operand buffers"
                          : " has no registered access metadata") +
                     " and runs unordered with node " +
                     std::to_string(other) +
                     "; its effects cannot be proven race-free",
                 "register a parameter access set for the kernel, or "
                 "serialize the capture streams");
            break; // one advisory per unknown node is enough
        }
    }
}

void
checkCaptureWindowAllocs(const Recorder &trace, LintReport &report)
{
    for (const auto &[bs, launches] : trace.graphLaunches()) {
        if (launches.size() < 2) {
            continue;
        }
        // launches are recorded in capture order, so the window is
        // [first.op_pos, last.op_pos): an allocator op at position p
        // happened between two captured launches iff some launch
        // precedes it (op_pos <= p) and some follows it (op_pos > p).
        const u64 window_begin = launches.front().op_pos;
        const u64 window_end = launches.back().op_pos;
        if (window_begin >= window_end) {
            continue; // no allocator activity spans the capture
        }
        for (const AllocRecord &rec : trace.allocs()) {
            const bool alloc_inside = rec.op_pos_alloc >= window_begin &&
                                      rec.op_pos_alloc < window_end;
            const bool free_inside =
                rec.op_pos_free >= 0 &&
                static_cast<u64>(rec.op_pos_free) >= window_begin &&
                static_cast<u64>(rec.op_pos_free) < window_end;
            if (!alloc_inside && !free_inside) {
                continue;
            }
            emit(report, "MDL803", Severity::kError,
                 "trace.graph[bs=" + std::to_string(bs) + "].ops[" +
                     std::to_string(alloc_inside
                                        ? rec.op_pos_alloc
                                        : static_cast<u64>(
                                              rec.op_pos_free)) +
                     "]",
                 std::string(alloc_inside ? "allocation" : "free") +
                     " of index " + std::to_string(rec.alloc_index) +
                     " interleaves the capture window [" +
                     std::to_string(window_begin) + ", " +
                     std::to_string(window_end) +
                     ") of this graph: the recorded op order depends "
                     "on runtime control flow (a conditionally-run "
                     "kernel allocating mid-capture), so a replay on "
                     "different inputs diverges from the captured "
                     "sequence",
                 "hoist data-dependent allocations out of the capture "
                 "or pre-allocate the worst-case buffer before "
                 "capturing");
        }
    }
}

} // namespace medusa::core::lint::detail
