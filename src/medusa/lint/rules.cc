/**
 * @file
 * The medusa-lint rule implementations; see lint.h for the rule-family
 * overview and DESIGN.md §9 for the mapping to paper failure modes.
 */

#include "medusa/lint/lint.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "medusa/analyze.h"
#include "medusa/lint/analysis.h"
#include "medusa/record.h"
#include "simcuda/kernel.h"

namespace medusa::core::lint {

namespace {

using detail::AllocLife;

std::string
opLoc(u64 pos)
{
    return "ops[" + std::to_string(pos) + "]";
}

std::string
graphLoc(u32 batch_size)
{
    return "graph[bs=" + std::to_string(batch_size) + "]";
}

std::string
paramLoc(u32 batch_size, u64 node, u64 param)
{
    return graphLoc(batch_size) + ".node[" + std::to_string(node) +
           "].param[" + std::to_string(param) + "]";
}

/** Runs the single-artifact rule families over one artifact. */
class ArtifactLinter
{
  public:
    ArtifactLinter(const Artifact &artifact, const LintOptions &options)
        : a_(artifact), opt_(options)
    {
    }

    LintReport
    run()
    {
        lives_ = detail::reconstructLifetimes(
            std::span<const AllocOp>(a_.ops.data(), a_.ops.size()));
        checkAllocSequence();
        checkIndirectCoverage();
        checkGraphTables();
        checkPermanentContents();
        checkFreeMemory();
        checkRaces();
        return std::move(report_);
    }

  private:
    void
    emit(const char *rule, Severity severity, std::string location,
         std::string message, std::string fix_hint)
    {
        report_.diagnostics.push_back(
            {rule, severity, std::move(location), std::move(message),
             std::move(fix_hint)});
    }

    // ---- MDL1xx: allocation-sequence well-formedness -----------------

    void
    checkAllocSequence()
    {
        std::vector<bool> freed;
        u64 alloc_count = 0;
        for (u64 pos = 0; pos < a_.ops.size(); ++pos) {
            const AllocOp &op = a_.ops[pos];
            if (op.kind == AllocOp::kAlloc) {
                ++alloc_count;
                freed.push_back(false);
                if (op.logical_size == 0) {
                    emit("MDL104", Severity::kError, opLoc(pos),
                         "allocation of zero logical bytes (the "
                         "allocator rejects it; replay would abort)",
                         "re-run the offline analysis; the recorded "
                         "sequence is corrupt");
                } else if (op.logical_size > opt_.device_memory_bytes) {
                    emit("MDL104", Severity::kError, opLoc(pos),
                         "logical size " +
                             std::to_string(op.logical_size) +
                             " exceeds the device capacity " +
                             std::to_string(opt_.device_memory_bytes),
                         "check for a size-field overflow or a "
                         "wrong-device artifact");
                }
                if (op.backing_size > op.logical_size) {
                    emit("MDL104", Severity::kError, opLoc(pos),
                         "backing size " +
                             std::to_string(op.backing_size) +
                             " exceeds the logical size " +
                             std::to_string(op.logical_size),
                         "backing bytes are a functional subset of the "
                         "accounted footprint; the op is corrupt");
                }
                continue;
            }
            // kFree.
            if (op.freed_alloc_index >= alloc_count) {
                emit("MDL102", Severity::kError, opLoc(pos),
                     "free of allocation index " +
                         std::to_string(op.freed_alloc_index) +
                         " which does not exist yet (only " +
                         std::to_string(alloc_count) +
                         " allocations precede this op)",
                     "the replay would have no address for this index; "
                     "re-materialize the artifact");
                continue;
            }
            if (freed[op.freed_alloc_index]) {
                emit("MDL101", Severity::kError, opLoc(pos),
                     "double free of allocation index " +
                         std::to_string(op.freed_alloc_index),
                     "the replayed allocator would reject the second "
                     "free; re-materialize the artifact");
                continue;
            }
            freed[op.freed_alloc_index] = true;
            if (pos >= a_.organic_op_count &&
                op.freed_alloc_index < a_.organic_alloc_count) {
                emit("MDL103", Severity::kWarning, opLoc(pos),
                     "replayed free of organic allocation index " +
                         std::to_string(op.freed_alloc_index) +
                         " (created by structure init, which still "
                         "references it)",
                     "verify the recorder's organic boundary; the "
                     "replay frees a buffer the runtime owns");
            }
        }
        if (a_.organic_op_count > a_.ops.size()) {
            emit("MDL105", Severity::kError, "artifact",
                 "organic_op_count " +
                     std::to_string(a_.organic_op_count) +
                     " exceeds the op sequence length " +
                     std::to_string(a_.ops.size()),
                 "the replay boundary is out of range; "
                 "re-materialize the artifact");
        } else {
            u64 organic_allocs = 0;
            for (u64 pos = 0; pos < a_.organic_op_count; ++pos) {
                if (a_.ops[pos].kind == AllocOp::kAlloc) {
                    ++organic_allocs;
                }
            }
            if (organic_allocs != a_.organic_alloc_count) {
                emit("MDL105", Severity::kError, "artifact",
                     "organic_alloc_count " +
                         std::to_string(a_.organic_alloc_count) +
                         " disagrees with the " +
                         std::to_string(organic_allocs) +
                         " alloc ops before the replay boundary",
                     "the online interceptor would mis-verify the "
                     "organic prefix; re-materialize the artifact");
            }
        }
    }

    // ---- MDL2xx: indirect-index coverage ------------------------------

    /**
     * The exact trace position of one node's captured launch when the
     * raw recorder trace is available, else -1.
     */
    i64
    exactLaunchPos(u32 batch_size, u64 node_count, u64 node) const
    {
        if (opt_.trace == nullptr) {
            return -1;
        }
        auto it = opt_.trace->graphLaunches().find(batch_size);
        if (it == opt_.trace->graphLaunches().end() ||
            it->second.size() != node_count) {
            return -1;
        }
        return static_cast<i64>(it->second[node].op_pos);
    }

    void
    checkIndirectCoverage()
    {
        for (const GraphBlueprint &g : a_.graphs) {
            // Without the raw trace, a graph's capture position is
            // bounded from below by the latest allocation event any of
            // its pointer parameters references: every referenced
            // buffer existed before the launch that referenced it.
            u64 launch_lower_bound = 0;
            for (const NodeBlueprint &n : g.nodes) {
                for (const ParamSpec &p : n.params) {
                    if (p.kind == ParamSpec::kIndirect &&
                        p.alloc_index < lives_.size()) {
                        launch_lower_bound =
                            std::max(launch_lower_bound,
                                     lives_[p.alloc_index].op_alloc);
                    }
                }
            }
            for (u64 ni = 0; ni < g.nodes.size(); ++ni) {
                const NodeBlueprint &n = g.nodes[ni];
                for (u64 pi = 0; pi < n.params.size(); ++pi) {
                    const ParamSpec &p = n.params[pi];
                    if (p.kind != ParamSpec::kIndirect) {
                        continue;
                    }
                    const std::string loc =
                        paramLoc(g.batch_size, ni, pi);
                    if (p.alloc_index >= lives_.size()) {
                        emit("MDL201", Severity::kError, loc,
                             "indirect index " +
                                 std::to_string(p.alloc_index) +
                                 " is beyond the " +
                                 std::to_string(lives_.size()) +
                                 "-allocation sequence",
                             "the replay table would have no address "
                             "for it; re-run the analysis stage");
                        continue;
                    }
                    const AllocLife &life = lives_[p.alloc_index];
                    if (p.offset >= life.logical) {
                        emit("MDL203", Severity::kError, loc,
                             "offset " + std::to_string(p.offset) +
                                 " is outside allocation " +
                                 std::to_string(p.alloc_index) +
                                 " of " +
                                 std::to_string(life.logical) +
                                 " bytes",
                             "an interior pointer must land inside "
                             "its buffer; the classification is "
                             "wrong");
                        continue;
                    }
                    // Liveness at the launch's trace position: exact
                    // when the recorder trace is available, else the
                    // per-graph inferred lower bound.
                    const i64 exact = exactLaunchPos(
                        g.batch_size, g.nodes.size(), ni);
                    const u64 launch_pos =
                        exact >= 0 ? static_cast<u64>(exact)
                                   : launch_lower_bound;
                    if (life.op_free >= 0 &&
                        static_cast<u64>(life.op_free) < launch_pos) {
                        emit("MDL202", Severity::kError, loc,
                             "stale pointer: allocation " +
                                 std::to_string(p.alloc_index) +
                                 " was freed at " +
                                 opLoc(static_cast<u64>(life.op_free)) +
                                 ", before the launch's trace "
                                 "position (" +
                                 (exact >= 0 ? "exactly "
                                             : "at least ") +
                                 std::to_string(launch_pos) +
                                 "); at replay its address belongs "
                                 "to a different buffer (Figure 6 "
                                 "data corruption)",
                             "re-run the analysis with "
                             "trace_based_matching=true");
                    }
                }
            }
        }
    }

    // ---- MDL3xx: kernel-name-table completeness + topology ------------

    void
    checkGraphTables()
    {
        std::set<u32> seen_batch_sizes;
        const simcuda::KernelRegistry &registry =
            simcuda::KernelRegistry::instance();
        for (const GraphBlueprint &g : a_.graphs) {
            if (!seen_batch_sizes.insert(g.batch_size).second) {
                emit("MDL304", Severity::kError, graphLoc(g.batch_size),
                     "duplicate blueprint for this batch size",
                     "the restore would instantiate one and shadow "
                     "the other; re-materialize the artifact");
            }
            for (const auto &e : g.edges) {
                if (e.first >= g.nodes.size() ||
                    e.second >= g.nodes.size()) {
                    emit("MDL303", Severity::kError,
                         graphLoc(g.batch_size) + ".edge[" +
                             std::to_string(e.first) + "->" +
                             std::to_string(e.second) + "]",
                         "edge endpoint is beyond the " +
                             std::to_string(g.nodes.size()) +
                             "-node blueprint",
                         "the rebuilt graph would be malformed; "
                         "re-materialize the artifact");
                }
            }
            if (!opt_.check_kernel_registry) {
                continue;
            }
            for (u64 ni = 0; ni < g.nodes.size(); ++ni) {
                const NodeBlueprint &n = g.nodes[ni];
                const std::string loc = graphLoc(g.batch_size) +
                                        ".node[" +
                                        std::to_string(ni) + "]";
                const simcuda::KernelId id =
                    registry.findByName(n.kernel_name);
                if (id == simcuda::kInvalidKernel) {
                    // The full symbol set — dlsym-visible AND hidden
                    // (enumeration-only) — does not contain the name.
                    const auto symbols = registry.symbolsInModule(
                        n.module_name, /*include_hidden=*/true);
                    emit("MDL301", Severity::kError, loc,
                         "kernel name \"" + n.kernel_name +
                             "\" is not in the module registry's "
                             "symbol set (module \"" +
                             n.module_name + "\" defines " +
                             std::to_string(symbols.size()) +
                             " symbols incl. hidden ones)",
                         "neither dlsym nor module enumeration could "
                         "restore its address; the name table entry "
                         "was dropped or mangled");
                    continue;
                }
                if (registry.def(id).module_name != n.module_name) {
                    const bool known_module =
                        registry.hasModule(n.module_name);
                    emit("MDL302", Severity::kError, loc,
                         "kernel \"" + n.kernel_name +
                             "\" is recorded in module \"" +
                             n.module_name +
                             (known_module
                                  ? "\" but the registry defines it "
                                    "in \"" +
                                        registry.def(id).module_name +
                                        "\""
                                  : "\" which is not a registered "
                                    "module at all"),
                         "dlsym against the recorded library would "
                         "fail; fix the name -> library mapping");
                }
            }
        }
    }

    // ---- MDL4xx: permanent-buffer content safety ----------------------

    void
    checkPermanentContents()
    {
        std::map<u64, const PermanentBuffer *> by_index;
        for (u64 bi = 0; bi < a_.permanent.size(); ++bi) {
            const PermanentBuffer &pb = a_.permanent[bi];
            const std::string loc =
                "permanent[" + std::to_string(bi) + "]";
            if (pb.alloc_index >= lives_.size()) {
                emit("MDL403", Severity::kError, loc,
                     "materialized contents for allocation index " +
                         std::to_string(pb.alloc_index) +
                         " which is beyond the sequence",
                     "the restore could not place these bytes; "
                     "re-materialize the artifact");
                continue;
            }
            const AllocLife &life = lives_[pb.alloc_index];
            if (life.op_free >= 0) {
                emit("MDL403", Severity::kError, loc,
                     "allocation " + std::to_string(pb.alloc_index) +
                         " is freed at " +
                         opLoc(static_cast<u64>(life.op_free)) +
                         " yet its contents are materialized as "
                         "permanent",
                     "restoring into a recycled address corrupts "
                     "whichever buffer owns it after replay");
            } else if (pb.contents.size() > life.backing) {
                emit("MDL403", Severity::kError, loc,
                     std::to_string(pb.contents.size()) +
                         " content bytes exceed the allocation's " +
                         std::to_string(life.backing) +
                         " backing bytes",
                     "the restore write would be rejected as out of "
                     "bounds");
            }
            if (!by_index.emplace(pb.alloc_index, &pb).second) {
                emit("MDL403", Severity::kError, loc,
                     "second materialization of allocation index " +
                         std::to_string(pb.alloc_index),
                     "duplicate permanent entries overwrite each "
                     "other; re-materialize the artifact");
            }
        }

        std::set<std::pair<u64, u64>> covered;
        for (u64 fi = 0; fi < a_.pointer_fixes.size(); ++fi) {
            const PointerWordFix &f = a_.pointer_fixes[fi];
            const std::string loc =
                "pointer_fixes[" + std::to_string(fi) + "]";
            auto host = by_index.find(f.buffer_alloc_index);
            if (host == by_index.end()) {
                emit("MDL402", Severity::kError, loc,
                     "fix targets allocation " +
                         std::to_string(f.buffer_alloc_index) +
                         " which has no materialized contents",
                     "a pointer word can only be rewritten inside a "
                     "permanent buffer");
                continue;
            }
            if (f.byte_offset + 8 > host->second->contents.size()) {
                emit("MDL402", Severity::kError, loc,
                     "fix word at offset " +
                         std::to_string(f.byte_offset) +
                         " overruns the " +
                         std::to_string(host->second->contents.size()) +
                         "-byte contents",
                     "the rewrite would write outside the restored "
                     "buffer");
                continue;
            }
            covered.insert({f.buffer_alloc_index, f.byte_offset});
            if (f.target_alloc_index >= lives_.size()) {
                emit("MDL402", Severity::kError, loc,
                     "fix points at allocation index " +
                         std::to_string(f.target_alloc_index) +
                         " beyond the sequence",
                     "the rewrite would have no replayed address to "
                     "install");
                continue;
            }
            const AllocLife &target = lives_[f.target_alloc_index];
            if (target.op_free >= 0) {
                emit("MDL402", Severity::kError, loc,
                     "fix points at allocation " +
                         std::to_string(f.target_alloc_index) +
                         " which is freed at " +
                         opLoc(static_cast<u64>(target.op_free)),
                     "the rewritten word would dangle after replay");
            } else if (f.target_offset >= target.logical) {
                emit("MDL402", Severity::kError, loc,
                     "fix target offset " +
                         std::to_string(f.target_offset) +
                         " is outside the " +
                         std::to_string(target.logical) +
                         "-byte target allocation",
                     "the rewritten word would point past its "
                     "buffer");
            }
        }

        // Pointer-shaped words with no covering fix dereference the
        // OFFLINE process's addresses after restoration — the base
        // paper's §8 limitation. Warning (not error): the word may be
        // coincidental data that nothing dereferences.
        for (const PermanentBuffer &pb : a_.permanent) {
            for (u64 off = 0; off + 8 <= pb.contents.size(); off += 8) {
                u64 word = 0;
                std::memcpy(&word, pb.contents.data() + off, 8);
                if (!looksLikeDevicePointer(word) ||
                    covered.count({pb.alloc_index, off}) != 0) {
                    continue;
                }
                std::ostringstream hex;
                hex << std::hex << word;
                emit("MDL401", Severity::kWarning,
                     "permanent[alloc=" +
                         std::to_string(pb.alloc_index) + "]+" +
                         std::to_string(off),
                     "pointer-shaped word 0x" + hex.str() +
                         " is not covered by any PointerWordFix and "
                         "would be restored verbatim (a stale "
                         "offline-process address)",
                     "re-run the analysis with "
                     "handle_indirect_pointers=true");
            }
        }
    }

    // ---- MDL5xx: free-memory-number consistency -----------------------

    void
    checkFreeMemory()
    {
        if (a_.free_gpu_memory > opt_.device_memory_bytes) {
            emit("MDL502", Severity::kError, "artifact",
                 "materialized free-memory figure " +
                     std::to_string(a_.free_gpu_memory) +
                     " exceeds the device capacity " +
                     std::to_string(opt_.device_memory_bytes),
                 "the KV-cache initialization would over-reserve; "
                 "check the device model");
            return;
        }
        // Replay the sequence's footprint in the allocator's size
        // classes. The profiling figure the artifact materializes is
        // capacity minus the live footprint at the profiling point, so
        // SOME prefix of the sequence must reproduce it exactly.
        const u64 granule = opt_.alloc_round_bytes > 0
                                ? opt_.alloc_round_bytes
                                : simcuda::CachingAllocator::kRoundBytes;
        auto round_up = [granule](u64 size) {
            return (size + granule - 1) / granule * granule;
        };
        std::vector<u64> rounded;
        u64 live = 0;
        u64 max_live = 0;
        bool reproducible = a_.free_gpu_memory ==
                            opt_.device_memory_bytes; // empty prefix
        for (const AllocOp &op : a_.ops) {
            if (op.kind == AllocOp::kAlloc) {
                rounded.push_back(round_up(op.logical_size));
                live += rounded.back();
            } else if (op.freed_alloc_index < rounded.size()) {
                live -= rounded[op.freed_alloc_index];
            }
            max_live = std::max(max_live, live);
            if (opt_.device_memory_bytes - live == a_.free_gpu_memory) {
                reproducible = true;
            }
        }
        if (max_live > opt_.device_memory_bytes) {
            emit("MDL502", Severity::kError, "artifact",
                 "the allocation sequence peaks at " +
                     std::to_string(max_live) +
                     " live bytes, beyond the device capacity " +
                     std::to_string(opt_.device_memory_bytes),
                 "the replay would hit out-of-memory; the artifact "
                 "belongs to a larger device");
            return;
        }
        if (!reproducible) {
            emit("MDL501", Severity::kError, "artifact",
                 "free-memory figure " +
                     std::to_string(a_.free_gpu_memory) +
                     " is not reproducible at any position of the "
                     "allocation sequence (capacity minus live "
                     "footprint never equals it)",
                 "the figure was patched or recorded against a "
                 "different sequence; re-profile (§6) and "
                 "re-materialize");
        }
    }

    // ---- MDL8xx: determinism / race analysis --------------------------

    void
    checkRaces()
    {
        const simcuda::KernelRegistry &registry =
            simcuda::KernelRegistry::instance();
        for (const GraphBlueprint &g : a_.graphs) {
            detail::RaceGraph rg;
            rg.batch_size = g.batch_size;
            rg.node_count = g.nodes.size();
            for (const auto &e : g.edges) {
                rg.edges.push_back({e.first, e.second});
            }
            rg.nodes.resize(g.nodes.size());
            for (u64 ni = 0; ni < g.nodes.size(); ++ni) {
                const NodeBlueprint &n = g.nodes[ni];
                detail::NodeAccess &node = rg.nodes[ni];
                node.kernel_name = n.kernel_name;
                if (!opt_.check_kernel_registry) {
                    continue; // unknown effects -> MDL804 territory
                }
                const simcuda::KernelId id =
                    registry.findByName(n.kernel_name);
                if (id == simcuda::kInvalidKernel) {
                    continue; // MDL301 already reported the name
                }
                const simcuda::KernelDef &def = registry.def(id);
                if (def.params.size() != n.params.size()) {
                    continue;
                }
                node.known = !def.access.empty();
                node.indirect = def.indirect_access;
                for (u64 pi = 0; pi < n.params.size(); ++pi) {
                    const ParamSpec &p = n.params[pi];
                    if (p.kind == ParamSpec::kIndirect &&
                        pi < def.access.size() &&
                        def.access[pi] != simcuda::ParamAccess::kNone) {
                        node.buffers.push_back(
                            {p.alloc_index, def.access[pi], pi});
                    }
                }
            }
            detail::checkGraphRaces(rg, graphLoc(g.batch_size),
                                    report_);
        }
        if (opt_.trace != nullptr) {
            detail::checkCaptureWindowAllocs(*opt_.trace, report_);
        }
    }

    const Artifact &a_;
    const LintOptions &opt_;
    std::vector<AllocLife> lives_;
    LintReport report_;
};

/** The ordered collective-kernel names of one blueprint. */
std::vector<std::string>
collectiveOrder(const GraphBlueprint &g, const std::string &module)
{
    std::vector<std::string> order;
    for (const NodeBlueprint &n : g.nodes) {
        if (n.module_name == module) {
            order.push_back(n.kernel_name);
        }
    }
    return order;
}

} // namespace

LintReport
lintArtifact(const Artifact &artifact, const LintOptions &options)
{
    return ArtifactLinter(artifact, options).run();
}

LintReport
lintTpArtifacts(const std::vector<Artifact> &rank_artifacts,
                const LintOptions &options)
{
    LintReport report;
    auto emit = [&report](const char *rule, std::string location,
                          std::string message, std::string hint) {
        report.diagnostics.push_back({rule, Severity::kError,
                                      std::move(location),
                                      std::move(message),
                                      std::move(hint)});
    };

    // Per-rank single-artifact rules, rank-prefixed. The per-launch
    // trace (if any) belongs to one rank only, so it is not forwarded.
    LintOptions rank_options = options;
    rank_options.trace = nullptr;
    for (u64 r = 0; r < rank_artifacts.size(); ++r) {
        LintReport rank = lintArtifact(rank_artifacts[r], rank_options);
        for (Diagnostic &d : rank.diagnostics) {
            d.location = "rank[" + std::to_string(r) + "]." + d.location;
        }
        report.merge(std::move(rank));
    }
    if (rank_artifacts.size() < 2) {
        return report;
    }

    // ---- MDL6xx: cross-rank consistency, rank 0 as reference ---------
    const Artifact &ref = rank_artifacts[0];
    std::map<u32, const GraphBlueprint *> ref_graphs;
    for (const GraphBlueprint &g : ref.graphs) {
        ref_graphs[g.batch_size] = &g;
    }
    for (u64 r = 1; r < rank_artifacts.size(); ++r) {
        const Artifact &a = rank_artifacts[r];
        const std::string rank_loc = "rank[" + std::to_string(r) + "]";
        if (a.model_name != ref.model_name ||
            a.model_seed != ref.model_seed) {
            emit("MDL601", rank_loc,
                 "artifact identity (" + a.model_name + ", seed " +
                     std::to_string(a.model_seed) +
                     ") diverges from rank 0 (" + ref.model_name +
                     ", seed " + std::to_string(ref.model_seed) + ")",
                 "all ranks must be materialized from one "
                 "capturing-stage run");
            continue;
        }
        std::map<u32, const GraphBlueprint *> graphs;
        for (const GraphBlueprint &g : a.graphs) {
            graphs[g.batch_size] = &g;
        }
        if (graphs.size() != ref_graphs.size() ||
            !std::equal(graphs.begin(), graphs.end(),
                        ref_graphs.begin(),
                        [](const auto &x, const auto &y) {
                            return x.first == y.first;
                        })) {
            emit("MDL602", rank_loc,
                 "captured batch-size set diverges from rank 0 (" +
                     std::to_string(graphs.size()) + " vs " +
                     std::to_string(ref_graphs.size()) + " sizes)",
                 "a decode on a size one rank lacks would deadlock "
                 "the collective; re-capture all ranks together");
            continue;
        }
        for (const auto &[bs, g] : graphs) {
            const GraphBlueprint &rg = *ref_graphs.at(bs);
            const std::string gloc = rank_loc + "." + graphLoc(bs);
            if (g->nodes.size() != rg.nodes.size() ||
                g->edges != rg.edges) {
                emit("MDL603", gloc,
                     "graph topology diverges from rank 0 (" +
                         std::to_string(g->nodes.size()) + " nodes, " +
                         std::to_string(g->edges.size()) +
                         " edges vs " +
                         std::to_string(rg.nodes.size()) + "/" +
                         std::to_string(rg.edges.size()) + ")",
                     "lockstep replay requires rank-identical "
                     "structure; re-capture all ranks together");
                continue;
            }
            if (collectiveOrder(*g, options.collective_module) !=
                collectiveOrder(rg, options.collective_module)) {
                emit("MDL604", gloc,
                     "collective-kernel ordering diverges from rank "
                     "0; lockstep replay would mismatch all-reduce "
                     "steps across ranks",
                     "the ranks were captured from different model "
                     "revisions; re-capture all ranks together");
            }
        }
    }
    return report;
}

} // namespace medusa::core::lint
