#include "medusa/restore.h"

#include <algorithm>

#include "medusa/lint/lint.h"
#include "medusa/replay.h"

namespace medusa::core {

using llm::ModelRuntime;
using llm::StageTimes;
using simcuda::CudaGraph;

namespace {

/**
 * Optional output validation (§4): replayed-graph logits must match an
 * eager forwarding from identical staged state. Shared by the rebuild
 * and patch attempts — the fidelity bar is the same for both.
 */
Status
validateOutputs(const MedusaEngine::Options &opts, ModelRuntime &rt,
                RestoreReport &report)
{
    Span s(opts.restore.pipeline.trace, "restore.validate", "restore");
    for (u32 bs : opts.restore.pipeline.validate_batch_sizes) {
        if (!rt.hasGraph(bs)) {
            continue;
        }
        MEDUSA_RETURN_IF_ERROR(rt.stageValidationState(bs));
        MEDUSA_ASSIGN_OR_RETURN(auto eager, rt.eagerDecodeLogits(bs));
        MEDUSA_RETURN_IF_ERROR(rt.stageValidationState(bs));
        auto replayed = rt.graphDecodeLogits(bs);
        if (!replayed.isOk()) {
            return validationFailure(
                "restored graph bs=" + std::to_string(bs) +
                " failed to replay: " + replayed.status().toString());
        }
        if (*replayed != eager) {
            return validationFailure(
                "restored graph bs=" + std::to_string(bs) +
                " output mismatches eager forwarding");
        }
        report.validated = true;
    }
    return Status::ok();
}

/**
 * One restore attempt: steps 1-8 of the online phase plus optional
 * output validation. Fills @p t (including the overlap-composed
 * t.loading) and @p report. On error the caller rolls the runtime back;
 * nothing here needs to clean up.
 */
Status
runRestoreAttempt(const MedusaEngine::Options &opts,
                  const Artifact &artifact, ModelRuntime &rt,
                  ReplayTable &table, StageTimes &t,
                  RestoreReport &report)
{
    const CostModel &cost = rt.process().cost();
    FaultInjector *fault = opts.restore.pipeline.fault;
    TraceRecorder *rec = opts.restore.pipeline.trace;

    SimClock &clock = rt.clock();
    f64 mark = clock.nowSec();
    auto lap = [&clock, &mark]() {
        const f64 now = clock.nowSec();
        const f64 d = now - mark;
        mark = now;
        return d;
    };

    // 1. Structure init (organic; verified against the artifact).
    {
        Span s(rec, "cold_start.struct_init", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.initStructure());
        MEDUSA_RETURN_IF_ERROR(table.organicStatus());
        if (table.allocCount() != artifact.organic_alloc_count) {
            return validationFailure(
                "structure init produced a different allocation count "
                "than the materialized sequence");
        }
    }
    t.struct_init = lap();

    // 2. Tokenizer.
    {
        Span s(rec, "cold_start.tokenizer", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.loadTokenizer());
    }
    t.tokenizer = lap();

    Span kv_span(rec, "cold_start.kv_init", "stage");
    // 3. KV-init restoration: read the artifact, adopt the materialized
    //    free-memory value (no profiling forwarding). The parse-time
    //    size hint avoids re-serializing just to price the read.
    {
        Span s(rec, "restore.artifact_read", "restore");
        clock.advance(units::usToNs(
            static_cast<f64>(artifact.serializedByteSize()) /
            (cost.artifact_read_gbps * 1e3)));
    }

    // 4. Replay the recorded (de)allocation sequence (§4.2).
    {
        Span s(rec, "restore.replay_alloc_seq", "restore");
        MEDUSA_RETURN_IF_ERROR(
            replayAllocSequence(artifact, rt, table, report, fault));
    }
    {
        Span s(rec, "restore.rebind", "restore");
        MEDUSA_RETURN_IF_ERROR(
            rebindEngineBuffers(artifact, opts.model, table, rt));
    }
    kv_span.end();
    t.kv_init = lap();

    // 5. Weights.
    {
        Span s(rec, "cold_start.weights", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.loadWeights());
    }
    t.weights = lap();

    Span cap_span(rec, "cold_start.capture", "stage");
    // 6. Permanent-buffer contents (§4.3 copy-free restoration) and
    //    indirect pointer words (§8 extension).
    if (opts.restore.restore_contents) {
        Span s(rec, "restore.contents", "restore");
        MEDUSA_RETURN_IF_ERROR(
            restoreContents(artifact, rt, table, report));
    }

    // 7. Triggering-kernels: warm up + capture the first layer, then
    //    build the kernel name -> address table (§5).
    std::unordered_map<std::string, KernelAddr> name_table;
    if (opts.restore.use_triggering_kernels) {
        Span s(rec, "restore.kernel_table", "restore");
        MEDUSA_ASSIGN_OR_RETURN(name_table,
                                buildKernelNameTable(rt, fault));
    }

    // 8. Rebuild and instantiate every materialized graph. The pure
    //    build stage fans out over restore_threads; simulated time and
    //    the report are unchanged by the thread count.
    std::unique_ptr<ThreadPool> pool = makeRestorePool(opts.restore);
    MEDUSA_RETURN_IF_ERROR(restoreGraphs(artifact, table, rt,
                                         name_table, opts.restore,
                                         report, pool.get()));
    cap_span.end();
    t.capture = lap();

    // Visible loading latency (Figure 8(c)'s timeline): the tokenizer,
    // the KV restore and the overlappable front of the capture/restore
    // stage run concurrently with the weights loading; the rest of the
    // restoration is serial. Structure init precedes everything.
    const f64 overlappable = cost.restore_overlap_fraction * t.capture;
    t.loading = t.struct_init +
                std::max(t.weights,
                         t.tokenizer + t.kv_init + overlappable) +
                (t.capture - overlappable);

    // Optional output validation (used by the offline dry-run).
    if (opts.restore.pipeline.validate) {
        MEDUSA_RETURN_IF_ERROR(validateOutputs(opts, rt, report));
    }
    return Status::ok();
}

/**
 * One PATCH restore attempt — the v6 image twin of runRestoreAttempt.
 * Steps 1-6 are shared physics (structure init, tokenizer, replay,
 * rebind, weights, contents); steps 7-8 become: resolve the
 * first-occurrence kernel table, apply the relocation table to a copy
 * of the patch template, and instantiate executable graphs straight
 * from the patched arrays. Device and module state after this attempt
 * is bit-identical to the rebuild path's (same fingerprint, same
 * logits); only the charged restore work differs.
 */
Status
runPatchRestoreAttempt(const MedusaEngine::Options &opts,
                       const MaterializedImage &image, ModelRuntime &rt,
                       ReplayTable &table, StageTimes &t,
                       RestoreReport &report)
{
    const CostModel &cost = rt.process().cost();
    FaultInjector *fault = opts.restore.pipeline.fault;
    TraceRecorder *rec = opts.restore.pipeline.trace;

    SimClock &clock = rt.clock();
    f64 mark = clock.nowSec();
    auto lap = [&clock, &mark]() {
        const f64 now = clock.nowSec();
        const f64 d = now - mark;
        mark = now;
        return d;
    };

    // 1. Structure init (organic; verified against the image).
    {
        Span s(rec, "cold_start.struct_init", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.initStructure());
        MEDUSA_RETURN_IF_ERROR(table.organicStatus());
        if (table.allocCount() != image.organic_alloc_count) {
            return validationFailure(
                "structure init produced a different allocation count "
                "than the materialized sequence");
        }
    }
    t.struct_init = lap();

    // 2. Tokenizer: rebuilt from the image's materialized merge list —
    //    no corpus re-training. Simulated charge matches loadTokenizer.
    {
        Span s(rec, "cold_start.tokenizer", "stage");
        MEDUSA_ASSIGN_OR_RETURN(
            auto tok, llm::BpeTokenizer::fromMerges(image.tokenizer_merges));
        MEDUSA_RETURN_IF_ERROR(rt.adoptTokenizer(std::move(tok)));
    }
    t.tokenizer = lap();

    Span kv_span(rec, "cold_start.kv_init", "stage");
    // 3. Image read: same bandwidth pricing as the artifact read; the
    //    image was decoded zero-copy, so this is the whole parse cost.
    {
        Span s(rec, "restore.image_open", "restore");
        clock.advance(
            units::usToNs(static_cast<f64>(image.serialized_size) /
                          (cost.artifact_read_gbps * 1e3)));
    }

    // 4. Replay the recorded (de)allocation sequence (§4.2).
    {
        Span s(rec, "restore.replay_alloc_seq", "restore");
        MEDUSA_RETURN_IF_ERROR(replayAllocSequence(
            std::span<const AllocOp>(image.ops), image.organic_op_count,
            rt, table, report, fault));
    }
    {
        Span s(rec, "restore.rebind", "restore");
        MEDUSA_RETURN_IF_ERROR(rebindEngineBuffers(
            image.tags, image.free_gpu_memory, opts.model, table, rt));
    }
    kv_span.end();
    t.kv_init = lap();

    // 5. Weights.
    {
        Span s(rec, "cold_start.weights", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.loadWeights());
    }
    t.weights = lap();

    Span cap_span(rec, "cold_start.capture", "stage");
    // 6. Permanent-buffer contents + indirect pointer words.
    if (opts.restore.restore_contents) {
        Span s(rec, "restore.contents", "restore");
        MEDUSA_RETURN_IF_ERROR(
            restoreImageContents(image, rt, table, report));
    }

    // 7. Triggering-kernels + the §5 name table, then ONE resolution
    //    per unique kernel in first-occurrence order — the order that
    //    makes module loads (and ASLR draws) match the rebuild path.
    std::unordered_map<std::string, KernelAddr> name_table;
    if (opts.restore.use_triggering_kernels) {
        Span s(rec, "restore.kernel_table", "restore");
        MEDUSA_ASSIGN_OR_RETURN(name_table,
                                buildKernelNameTable(rt, fault));
    }
    std::vector<KernelAddr> kernel_addrs;
    {
        Span s(rec, "restore.graphs.resolve", "restore");
        MEDUSA_ASSIGN_OR_RETURN(
            kernel_addrs, resolveImageKernels(image, rt, name_table,
                                              opts.restore, report));
    }

    // 8. The patch pass + direct instantiation from the patched image.
    MEDUSA_ASSIGN_OR_RETURN(
        const std::vector<u64> patched,
        applyImageRelocations(image, table, kernel_addrs, rt,
                              opts.restore, report));
    MEDUSA_RETURN_IF_ERROR(
        patchRestoreGraphs(image, patched, rt, opts.restore, report));
    cap_span.end();
    t.capture = lap();

    const f64 overlappable = cost.restore_overlap_fraction * t.capture;
    t.loading = t.struct_init +
                std::max(t.weights,
                         t.tokenizer + t.kv_init + overlappable) +
                (t.capture - overlappable);

    if (opts.restore.pipeline.validate) {
        MEDUSA_RETURN_IF_ERROR(validateOutputs(opts, rt, report));
    }
    return Status::ok();
}

/**
 * The classic profile+capture cold start (§2.1), run on a pristine
 * process after the restore path was rolled back. Serial vLLM
 * composition; no Medusa machinery touches the runtime.
 */
Status
runVanillaColdStart(ModelRuntime &rt, StageTimes &t, TraceRecorder *rec)
{
    SimClock &clock = rt.clock();
    f64 mark = clock.nowSec();
    auto lap = [&clock, &mark]() {
        const f64 now = clock.nowSec();
        const f64 d = now - mark;
        mark = now;
        return d;
    };

    Span vanilla_span(rec, "fallback.vanilla_cold_start", "fallback");
    {
        Span s(rec, "cold_start.struct_init", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.initStructure());
    }
    t.struct_init = lap();
    {
        Span s(rec, "cold_start.weights", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.loadWeights());
    }
    t.weights = lap();
    {
        Span s(rec, "cold_start.tokenizer", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.loadTokenizer());
    }
    t.tokenizer = lap();
    {
        Span s(rec, "cold_start.kv_init", "stage");
        MEDUSA_ASSIGN_OR_RETURN(u64 free_bytes, rt.profileFreeMemory());
        MEDUSA_RETURN_IF_ERROR(rt.initKvCache(free_bytes));
    }
    t.kv_init = lap();
    {
        Span s(rec, "cold_start.capture", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.captureDecodeGraphs());
    }
    t.capture = lap();
    t.loading = llm::composeLoading(llm::Strategy::kVllm, t,
                                    rt.process().cost());
    return Status::ok();
}

} // namespace

StatusOr<std::unique_ptr<MedusaEngine>>
MedusaEngine::coldStart(const Options &caller_opts,
                        const Artifact &artifact)
{
    // MEDUSA_FAULT_PLAN applies to any engine that was not handed an
    // explicit injector, so whole test suites can run fault-hooked
    // without per-call-site wiring.
    Options opts = caller_opts;
    if (opts.restore.pipeline.fault == nullptr) {
        opts.restore.pipeline.fault = envFaultInjector();
    }
    // Spans always land in the engine-local recorder (and thus the
    // ColdStartReport); the caller's sink, when set, gets a copy.
    TraceRecorder *user_trace = opts.restore.pipeline.trace;

    if (artifact.model_name != opts.model.name ||
        artifact.model_seed != opts.model.seed) {
        return validationFailure("artifact was materialized for model " +
                                 artifact.model_name);
    }

    // Optional static pre-restore check: refuse to replay an artifact
    // that provably faults or corrupts, before touching device state.
    if (opts.restore.pipeline.lint) {
        const lint::LintReport lint_report = lint::lintArtifact(artifact);
        if (!lint_report.replaySafe()) {
            return validationFailure("artifact failed pre-restore lint: " +
                                     lint_report.firstError());
        }
    }

    return runTransactional(
        std::move(opts), user_trace,
        [&artifact]() { return std::make_unique<ReplayTable>(&artifact); },
        [&artifact](const Options &o, ModelRuntime &rt, ReplayTable &tb,
                    StageTimes &t, RestoreReport &rep) {
            return runRestoreAttempt(o, artifact, rt, tb, t, rep);
        });
}

StatusOr<std::unique_ptr<MedusaEngine>>
MedusaEngine::coldStartFromImage(const Options &caller_opts,
                                 const MaterializedImage &image)
{
    Options opts = caller_opts;
    if (opts.restore.pipeline.fault == nullptr) {
        opts.restore.pipeline.fault = envFaultInjector();
    }
    TraceRecorder *user_trace = opts.restore.pipeline.trace;

    if (image.model_name != opts.model.name ||
        image.model_seed != opts.model.seed) {
        return validationFailure("image was materialized for model " +
                                 image.model_name);
    }
    // Static pre-restore gate: run the MDL7xx/MDL8xx image rules before
    // any journaled attempt starts, so a defective image is rejected
    // with the journal untouched and zero patches applied. Open-time
    // checks (CRC, relocation bounds, slot layout) prove the bytes
    // decode; the rules prove the decoded image replays safely — the
    // coverage proof in particular catches an unpatched address slot
    // that would replay a capture-time pointer verbatim.
    if (opts.restore.pipeline.lint) {
        // The engine always drives device 0, which is also the lint
        // default for the MDL705 pointer-window heuristic.
        const lint::LintReport lint_report = lint::lintImage(image);
        if (!lint_report.replaySafe()) {
            return validationFailure("image failed pre-restore lint: " +
                                     lint_report.firstError());
        }
    }

    return runTransactional(
        std::move(opts), user_trace,
        [&image]() {
            return std::make_unique<ReplayTable>(
                std::span<const AllocOp>(image.ops),
                image.organic_alloc_count);
        },
        [&image](const Options &o, ModelRuntime &rt, ReplayTable &tb,
                 StageTimes &t, RestoreReport &rep) {
            return runPatchRestoreAttempt(o, image, rt, tb, t, rep);
        });
}

StatusOr<std::unique_ptr<MedusaEngine>>
MedusaEngine::runTransactional(Options opts, TraceRecorder *user_trace,
                               const MakeTableFn &make_table,
                               const AttemptFn &attempt_fn)
{
    ModelRuntime::Options ropts;
    ropts.model = opts.model;
    ropts.aslr_seed = opts.aslr_seed;
    ropts.cost = opts.cost;
    auto runtime = std::make_unique<ModelRuntime>(ropts);
    ModelRuntime &rt = *runtime;
    const CostModel &cost = rt.process().cost();

    std::unique_ptr<MedusaEngine> engine(new MedusaEngine());
    ColdStartReport &cs = engine->report_;
    cs.strategy = llm::strategyName(llm::Strategy::kMedusa);
    RestoreReport &report = cs.restore;
    const f64 runtime_init = opts.warm_container
                                 ? cost.runtime_init_warm_ms / 1e3
                                 : cost.runtime_init_cold_ms / 1e3;

    const FallbackPolicy &fb = opts.restore.fallback;
    const u32 max_attempts =
        fb.mode == FallbackMode::kRetryThenVanilla
            ? std::max<u32>(1, fb.max_attempts)
            : 1;
    f64 backoff = fb.backoff_sec;
    SimClock &clock = rt.clock();

    TraceRecorder rec(&clock);
    MetricsRegistry *user_metrics = opts.restore.pipeline.metrics;
    opts.restore.pipeline.trace = &rec;

    // On every exit path: snapshot spans/metrics into the report and
    // propagate them to the caller's sinks.
    auto finishReport = [&]() {
        MetricsRegistry registry;
        publishRestoreMetrics(report, registry);
        cs.metrics = registry.snapshot();
        cs.spans = rec.events();
        if (user_trace != nullptr) {
            user_trace->appendAll(cs.spans);
        }
        if (user_metrics != nullptr) {
            user_metrics->mergeFrom(cs.metrics);
        }
    };

    for (u32 attempt = 1; attempt <= max_attempts; ++attempt) {
        ++report.restore_attempts;
        // Fresh interceptor per attempt: the replay table's sequence
        // numbering restarts with the reconstructed allocator.
        std::unique_ptr<ReplayTable> table = make_table();
        rt.allocator().setObserver(table.get());
        rt.process().beginJournal();

        StageTimes t;
        t.runtime_init = runtime_init;
        RestoreReport working;
        const f64 start = clock.nowSec();
        Span attempt_span(&rec, "restore.attempt", "restore");
        attempt_span.arg("attempt", std::to_string(attempt));
        const Status st = attempt_fn(opts, rt, *table, t, working);
        attempt_span.end();
        if (st.isOk()) {
            rt.process().endJournal();
            // Fold the accumulated failure accounting into this
            // attempt's report.
            working.restore_attempts = report.restore_attempts;
            working.restore_failures = report.restore_failures;
            working.retries = report.retries;
            working.wasted_restore_sec = report.wasted_restore_sec;
            working.backoff_sec = report.backoff_sec;
            working.last_failure = report.last_failure;
            report = std::move(working);
            t.loading += report.wasted_restore_sec + report.backoff_sec;
            cs.times = t;
            cs.outcome = attempt == 1
                             ? ColdStartOutcome::kRestored
                             : ColdStartOutcome::kRestoredAfterRetry;
            finishReport();
            engine->interceptor_ = std::move(table);
            engine->runtime_ = std::move(runtime);
            return engine;
        }

        // Transactional failure path: the attempt burned real time but
        // must leave no device state behind. Roll the whole simulated
        // process back to pristine (the clock keeps running).
        ++report.restore_failures;
        report.wasted_restore_sec += clock.nowSec() - start;
        report.last_failure = st.toString();
        rec.instant("restore.attempt_failed", "restore");
        {
            Span s(&rec, "restore.rollback", "restore");
            rt.rollbackToPristine();
        }
        rt.process().endJournal();

        if (fb.mode == FallbackMode::kFail) {
            return st;
        }
        if (attempt < max_attempts) {
            ++report.retries;
            Span s(&rec, "restore.backoff", "restore");
            clock.advance(units::secToNs(backoff));
            report.backoff_sec += backoff;
            backoff *= fb.backoff_multiplier;
        }
    }

    // Degraded mode: the classic cold start on the clean process. The
    // wasted restore time and backoff pauses precede it serially, so
    // they land in the visible loading latency.
    report.fallback_vanilla = true;
    StageTimes t;
    t.runtime_init = runtime_init;
    MEDUSA_RETURN_IF_ERROR(runVanillaColdStart(rt, t, &rec));
    t.loading += report.wasted_restore_sec + report.backoff_sec;
    cs.times = t;
    cs.outcome = ColdStartOutcome::kFellBack;
    cs.strategy = llm::strategyName(llm::Strategy::kVllm);
    finishReport();
    engine->runtime_ = std::move(runtime);
    return engine;
}

} // namespace medusa::core
