#include "medusa/checkpoint.h"

#include "simcuda/memory.h"

namespace medusa::core {

namespace {

/** Host-side image share: runtime + allocator + instantiated graphs. */
constexpr u64 kHostStateBytes = 600ull * units::MiB;
/** Fixed process-fixup cost on restore (page tables, handles). */
constexpr f64 kRestoreFixupSec = 0.12;

} // namespace

StatusOr<CheckpointImage>
CheckpointEngine::checkpoint(llm::BaselineEngine &engine)
{
    llm::ModelRuntime &rt = engine.runtime();
    if (rt.graphCount() == 0 && engine.strategy() !=
                                    llm::Strategy::kNoCudaGraph) {
        return failedPrecondition("checkpoint of a half-loaded engine");
    }
    CheckpointImage image;
    image.model = rt.model();
    image.aslr_seed = engine.aslrSeed(); // restore recreates the layout
    image.device_bytes = rt.process().memory().usedLogicalBytes();
    image.host_bytes = kHostStateBytes;
    // Charge the checkpoint write.
    rt.clock().advance(rt.process().cost().ssdReadTime(
        static_cast<f64>(image.totalBytes())));
    return image;
}

StatusOr<std::unique_ptr<CheckpointEngine>>
CheckpointEngine::restore(const CheckpointImage &image,
                          const CostModel *cost, bool warm_container)
{
    // Static pre-restore sanity check, mirroring medusa-lint's
    // pre-restore gate on artifacts: reject an image that could not
    // have come from a ready instance before paying the full-image
    // read. A CRIU-style image records the complete device footprint,
    // so a zero or beyond-capacity figure means corruption.
    if (image.device_bytes == 0) {
        return validationFailure(
            "checkpoint image records no device state");
    }
    if (image.device_bytes >
        simcuda::DeviceMemoryManager::kDefaultDeviceBytes) {
        return validationFailure(
            "checkpoint image device footprint exceeds the device "
            "capacity; the image is corrupt or from a larger device");
    }

    // Functionally, restoring bits into the identical address layout is
    // equivalent to re-running the deterministic cold start with the
    // checkpointed seed; only the *cost* differs: one sequential image
    // read + fixup instead of the loading-phase stages.
    llm::BaselineEngine::Options opts;
    opts.model = image.model;
    opts.strategy = llm::Strategy::kVllm;
    opts.aslr_seed = image.aslr_seed;
    opts.cost = cost;
    opts.warm_container = warm_container;
    MEDUSA_ASSIGN_OR_RETURN(auto baseline,
                            llm::BaselineEngine::coldStart(opts));

    std::unique_ptr<CheckpointEngine> engine(
        new CheckpointEngine(std::move(baseline)));
    const CostModel &c = engine->engine_->runtime().process().cost();
    llm::StageTimes t;
    t.runtime_init = warm_container ? c.runtime_init_warm_ms / 1e3
                                    : c.runtime_init_cold_ms / 1e3;
    // The restore is dominated by reading the full image.
    t.loading = units::nsToSec(c.ssdReadTime(
                    static_cast<f64>(image.totalBytes()))) +
                kRestoreFixupSec;
    // Attribute everything to a single "restore" pseudo-stage.
    t.weights = t.loading - kRestoreFixupSec;
    t.capture = kRestoreFixupSec;
    engine->times_ = t;
    return engine;
}

} // namespace medusa::core
