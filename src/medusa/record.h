/**
 * @file
 * The offline-phase recorder: intercepts the buffer (de)allocation
 * sequence, every kernel launch, and the engine's buffer tags while a
 * capturing-stage cold start runs (paper §3, capturing stage).
 */

#ifndef MEDUSA_MEDUSA_RECORD_H
#define MEDUSA_MEDUSA_RECORD_H

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "llm/hooks.h"
#include "medusa/artifact.h"
#include "simcuda/caching_allocator.h"

namespace medusa::core {

/** One recorded allocation with its lifetime in op positions. */
struct AllocRecord
{
    u64 alloc_index = 0;
    DeviceAddr addr = 0;
    u64 logical_size = 0;
    u64 backing_size = 0;
    /** Position in the op sequence where the allocation happened. */
    u64 op_pos_alloc = 0;
    /** Position of the free, or -1 if never freed. */
    i64 op_pos_free = -1;
};

/** One kernel launch recorded during stream capture. */
struct CapturedLaunch
{
    KernelAddr fn = 0;
    simcuda::RawParams params;
    /** Op-sequence position at launch time (for backward matching). */
    u64 op_pos = 0;
};

/**
 * The recorder; see file comment. Attach via
 * CachingAllocator::setObserver, GpuProcess::setLaunchObserver and
 * ModelRuntime::Options::observer.
 */
class Recorder final : public simcuda::AllocObserver,
                       public simcuda::LaunchObserver,
                       public llm::EngineObserver
{
  public:
    // ---- AllocObserver -------------------------------------------------
    void onAlloc(u64 seq_index, DeviceAddr addr, u64 logical_size,
                 u64 backing_size) override;
    void onFree(DeviceAddr addr) override;

    // ---- LaunchObserver ---------------------------------------------------
    void onKernelLaunch(KernelAddr fn, const simcuda::RawParams &params,
                        bool capturing) override;

    // ---- EngineObserver -----------------------------------------------------
    void onTagBuffer(const std::string &tag, DeviceAddr addr) override;

    // ---- phase markers (driven by the offline driver) ----------------------

    /**
     * End of the organically-replayed prefix (structure init): the
     * online phase reproduces everything before this point by running
     * the same deterministic code, and replays everything after.
     */
    void markOrganicBoundary();

    /** Start of the capturing stage (for §4.3 buffer classification). */
    void markCaptureStageBegin();

    /** Delimit the captured launches of one batch size's graph. */
    void beginGraph(u32 batch_size);
    void endGraph();

    // ---- analysis-facing queries ------------------------------------------

    const std::vector<AllocOp> &ops() const { return ops_; }
    const std::vector<AllocRecord> &allocs() const { return allocs_; }
    const std::map<u32, std::vector<CapturedLaunch>> &
    graphLaunches() const
    {
        return graph_launches_;
    }
    const std::map<std::string, u64> &tags() const { return tags_; }

    u64 organicOpCount() const { return organic_op_count_; }
    u64 organicAllocCount() const { return organic_alloc_count_; }
    u64 captureStageOpPos() const { return capture_stage_op_pos_; }

    /**
     * All records whose logical range [addr, addr+size) contains @p
     * value, ordered by allocation time. Non-empty only when value is a
     * real (possibly interior) buffer pointer.
     */
    std::vector<const AllocRecord *> recordsContaining(DeviceAddr value)
        const;

  private:
    std::vector<AllocOp> ops_;
    std::vector<AllocRecord> allocs_;
    /** live address -> alloc index. */
    std::unordered_map<DeviceAddr, u64> live_;
    /** driver-block base -> indexes of records at that base, in order. */
    std::map<DeviceAddr, std::vector<u64>> by_base_;
    std::map<u32, std::vector<CapturedLaunch>> graph_launches_;
    std::map<std::string, u64> tags_;

    u64 organic_op_count_ = 0;
    u64 organic_alloc_count_ = 0;
    u64 capture_stage_op_pos_ = 0;
    i32 current_graph_ = -1;
};

} // namespace medusa::core

#endif // MEDUSA_MEDUSA_RECORD_H
