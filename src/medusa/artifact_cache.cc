#include "medusa/artifact_cache.h"

#include <algorithm>

namespace medusa::core {

ArtifactCache::ArtifactCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity))
{
}

StatusOr<std::shared_ptr<const Artifact>>
ArtifactCache::getOrLoad(const std::string &key, const Loader &loader,
                         bool *was_hit)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        auto it = slots_.find(key);
        if (it == slots_.end()) {
            break; // this caller becomes the loader
        }
        if (it->second.loading) {
            // Single-flight: block until the in-flight load resolves.
            // A failed load erases the slot, so the loop re-enters the
            // loader path and retries.
            cv_.wait(lock);
            continue;
        }
        it->second.last_used = ++tick_;
        ++stats_.hits;
        if (was_hit != nullptr) {
            *was_hit = true;
        }
        return it->second.value;
    }

    slots_.emplace(key, Slot{});
    ++stats_.misses;
    lock.unlock();
    StatusOr<Artifact> loaded = loader();
    lock.lock();
    if (!loaded.isOk()) {
        slots_.erase(key);
        ++stats_.failed_loads;
        cv_.notify_all();
        return loaded.status();
    }
    Slot &slot = slots_[key];
    slot.loading = false;
    slot.value =
        std::make_shared<const Artifact>(std::move(loaded).value());
    slot.last_used = ++tick_;
    std::shared_ptr<const Artifact> value = slot.value;
    evictOverCapacity();
    cv_.notify_all();
    if (was_hit != nullptr) {
        *was_hit = false;
    }
    return value;
}

void
ArtifactCache::evictOverCapacity()
{
    auto resident = [this]() {
        std::size_t n = 0;
        for (const auto &[key, slot] : slots_) {
            n += slot.loading ? 0 : 1;
        }
        return n;
    };
    while (resident() > capacity_) {
        auto victim = slots_.end();
        for (auto it = slots_.begin(); it != slots_.end(); ++it) {
            if (it->second.loading) {
                continue;
            }
            if (victim == slots_.end() ||
                it->second.last_used < victim->second.last_used) {
                victim = it;
            }
        }
        slots_.erase(victim);
        ++stats_.evictions;
    }
}

ArtifactCache::Stats
ArtifactCache::stats() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return stats_;
}

std::size_t
ArtifactCache::size() const
{
    std::unique_lock<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &[key, slot] : slots_) {
        n += slot.loading ? 0 : 1;
    }
    return n;
}

void
ArtifactCache::clear()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (auto it = slots_.begin(); it != slots_.end();) {
        it = it->second.loading ? std::next(it) : slots_.erase(it);
    }
}

} // namespace medusa::core
