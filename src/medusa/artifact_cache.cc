/**
 * @file
 * Pinned instantiations of MaterializationCache. The template lives in
 * the header (every member is inline there); compiling the two aliases
 * here once keeps the per-TU cost of including artifact_cache.h down
 * and makes template build errors surface in exactly one place.
 */

#include "medusa/artifact_cache.h"

namespace medusa::core {

template class MaterializationCache<Artifact>;
template class MaterializationCache<MaterializedImage>;

} // namespace medusa::core
