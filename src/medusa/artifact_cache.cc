#include "medusa/artifact_cache.h"

#include <algorithm>
#include <cmath>

namespace medusa::core {

ArtifactCache::ArtifactCache(std::size_t capacity,
                             f64 initial_backoff_ms, f64 max_backoff_ms)
    : capacity_(std::max<std::size_t>(1, capacity)),
      initial_backoff_ms_(std::max(0.0, initial_backoff_ms)),
      max_backoff_ms_(std::max(initial_backoff_ms, max_backoff_ms))
{
}

void
ArtifactCache::setFaultInjector(FaultInjector *fault)
{
    std::unique_lock<std::mutex> lock(mu_);
    fault_ = fault;
}

void
ArtifactCache::setTraceRecorder(TraceRecorder *trace)
{
    std::unique_lock<std::mutex> lock(mu_);
    trace_ = trace;
}

Status
ArtifactCache::keyFailure(const std::string &key) const
{
    std::unique_lock<std::mutex> lock(mu_);
    auto it = failures_.find(key);
    return it == failures_.end() ? Status::ok() : it->second.last;
}

StatusOr<std::shared_ptr<const Artifact>>
ArtifactCache::getOrLoad(const std::string &key, const Loader &loader,
                         bool *was_hit)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        auto it = slots_.find(key);
        if (it != slots_.end()) {
            if (it->second.loading) {
                // Single-flight: block until the in-flight load
                // resolves. A failed load erases the slot, so the loop
                // re-enters the loader path and retries.
                cv_.wait(lock);
                continue;
            }
            it->second.last_used = ++tick_;
            metrics_.counter("artifact_cache.hits").add(1);
            if (trace_ != nullptr) {
                trace_->instant("cache.hit", "cache");
            }
            if (was_hit != nullptr) {
                *was_hit = true;
            }
            return it->second.value;
        }
        // Failure backoff: do not hot-loop a key whose loader just
        // failed — wait out the exponential-backoff deadline first (a
        // concurrent success wakes us early via notify_all).
        auto fit = failures_.find(key);
        if (fit != failures_.end() &&
            std::chrono::steady_clock::now() <
                fit->second.not_before) {
            metrics_.counter("artifact_cache.backoff_waits").add(1);
            cv_.wait_until(lock, fit->second.not_before);
            continue;
        }
        break; // this caller becomes the loader
    }

    slots_.emplace(key, Slot{});
    metrics_.counter("artifact_cache.misses").add(1);
    FaultInjector *fault = fault_;
    TraceRecorder *trace = trace_;
    lock.unlock();
    Span load_span(trace, "cache.load", "cache");
    load_span.arg("key", key);
    StatusOr<Artifact> loaded = [&]() -> StatusOr<Artifact> {
        if (fault != nullptr) {
            const Status injected =
                fault->check(FaultPoint::kCacheLoader, key);
            if (!injected.isOk()) {
                return injected;
            }
        }
        return loader();
    }();
    load_span.end();
    lock.lock();
    if (!loaded.isOk()) {
        slots_.erase(key);
        metrics_.counter("artifact_cache.failed_loads").add(1);
        last_failure_ = loaded.status();
        Failure &failure = failures_[key];
        failure.last = loaded.status();
        ++failure.consecutive;
        const f64 delay_ms = std::min(
            max_backoff_ms_,
            initial_backoff_ms_ *
                std::pow(2.0, static_cast<f64>(
                                  failure.consecutive - 1)));
        failure.not_before =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(
                static_cast<long>(delay_ms * 1e3));
        cv_.notify_all();
        return loaded.status();
    }
    Slot &slot = slots_[key];
    slot.loading = false;
    slot.value =
        std::make_shared<const Artifact>(std::move(loaded).value());
    slot.last_used = ++tick_;
    std::shared_ptr<const Artifact> value = slot.value;
    failures_.erase(key);
    evictOverCapacity();
    cv_.notify_all();
    if (was_hit != nullptr) {
        *was_hit = false;
    }
    return value;
}

void
ArtifactCache::evictOverCapacity()
{
    auto resident = [this]() {
        std::size_t n = 0;
        for (const auto &[key, slot] : slots_) {
            n += slot.loading ? 0 : 1;
        }
        return n;
    };
    while (resident() > capacity_) {
        auto victim = slots_.end();
        for (auto it = slots_.begin(); it != slots_.end(); ++it) {
            if (it->second.loading) {
                continue;
            }
            if (victim == slots_.end() ||
                it->second.last_used < victim->second.last_used) {
                victim = it;
            }
        }
        slots_.erase(victim);
        metrics_.counter("artifact_cache.evictions").add(1);
        if (trace_ != nullptr) {
            trace_->instant("cache.evict", "cache");
        }
    }
}

ArtifactCache::Stats
ArtifactCache::stats() const
{
    const MetricsSnapshot snap = metrics_.snapshot();
    Stats s;
    s.hits = snap.counterValue("artifact_cache.hits");
    s.misses = snap.counterValue("artifact_cache.misses");
    s.evictions = snap.counterValue("artifact_cache.evictions");
    s.failed_loads = snap.counterValue("artifact_cache.failed_loads");
    s.backoff_waits = snap.counterValue("artifact_cache.backoff_waits");
    std::unique_lock<std::mutex> lock(mu_);
    s.last_failure = last_failure_;
    return s;
}

std::size_t
ArtifactCache::size() const
{
    std::unique_lock<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &[key, slot] : slots_) {
        n += slot.loading ? 0 : 1;
    }
    return n;
}

void
ArtifactCache::clear()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (auto it = slots_.begin(); it != slots_.end();) {
        it = it->second.loading ? std::next(it) : slots_.erase(it);
    }
}

} // namespace medusa::core
