/**
 * @file
 * The materialized artifact: everything Medusa's offline phase saves and
 * the online phase restores.
 *
 * Per the paper (§3), one artifact is produced per <GPU type, model>
 * pair and contains:
 *  - the available free GPU memory for KV-cache initialization (§6),
 *  - the buffer (de)allocation sequence to replay (§4.2), with the
 *    boundary after which online replay takes over from organic
 *    execution,
 *  - per-batch-size graph blueprints: node kernel *names* (addresses
 *    are process-specific; §5), parameter specs (constants verbatim,
 *    pointers as indirect index pointers = (allocation index, offset);
 *    §4.1), and edges,
 *  - the contents of permanent buffers (§4.3's copy-free restoration
 *    keeps only these — e.g. 4-byte GEMM semaphores),
 *  - buffer tags so the engine can re-bind its I/O and KV-cache buffers
 *    after replay.
 */

#ifndef MEDUSA_MEDUSA_ARTIFACT_H
#define MEDUSA_MEDUSA_ARTIFACT_H

#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"
#include "simtime/cost_model.h"

namespace medusa {
class FaultInjector;
class MetricsRegistry;
class ThreadPool;
class TraceRecorder;
}

namespace medusa::core {

/** One operation of the recorded buffer (de)allocation sequence. */
struct AllocOp
{
    enum Kind : u8 { kAlloc = 0, kFree = 1 };

    Kind kind = kAlloc;
    /** kAlloc: accounted size. */
    u64 logical_size = 0;
    /** kAlloc: functional backing size. */
    u64 backing_size = 0;
    /** kFree: the allocation index (see below) being freed. */
    u64 freed_alloc_index = 0;
};

/**
 * How one kernel parameter is materialized.
 */
struct ParamSpec
{
    enum Kind : u8 {
        /** Verbatim bytes (plain constants). */
        kConstant = 0,
        /** Data pointer: the (allocation index, byte offset) pair. */
        kIndirect = 1,
    };

    Kind kind = kConstant;
    std::vector<u8> constant_bytes;
    u64 alloc_index = 0;
    u64 offset = 0;
};

/** One materialized CUDA graph node. */
struct NodeBlueprint
{
    /** Mangled kernel name (the address is restored online, §5). */
    std::string kernel_name;
    /** The kernel's module / dynamic-link library. */
    std::string module_name;
    TimingInfo timing;
    std::vector<ParamSpec> params;
};

/** One materialized CUDA graph (for one batch size). */
struct GraphBlueprint
{
    u32 batch_size = 0;
    std::vector<NodeBlueprint> nodes;
    /** Dependency edges (source node index, destination node index). */
    std::vector<std::pair<u32, u32>> edges;
};

/** Saved contents of a permanent buffer (§4.3). */
struct PermanentBuffer
{
    u64 alloc_index = 0;
    std::vector<u8> contents;
};

/**
 * One *indirect pointer* word (§8): a device-pointer value stored
 * INSIDE a materialized buffer (e.g. a batched-GEMM operand array).
 * The online phase rewrites the 8 bytes at
 * (buffer_alloc_index, byte_offset) with the replayed address of
 * (target_alloc_index) + target_offset after contents restoration.
 */
struct PointerWordFix
{
    u64 buffer_alloc_index = 0;
    u64 byte_offset = 0;
    u64 target_alloc_index = 0;
    u64 target_offset = 0;
};

/** Statistics the analysis stage reports (used by benches and tests). */
struct AnalysisStats
{
    u64 total_nodes = 0;
    u64 total_params = 0;
    u64 pointer_params = 0;
    u64 constant_params = 0;
    /** Pointer candidates rejected because no allocation matched. */
    u64 decoy_candidates = 0;
    /** Params corrected from pointer to constant by validation. */
    u64 validation_repairs = 0;
    /** Nodes whose kernels are visible to dlsym(). */
    u64 dlsym_visible_nodes = 0;
    /** Nodes requiring module enumeration (hidden kernels). */
    u64 hidden_kernel_nodes = 0;
    /** Buffers classified as model parameters (contents skipped). */
    u64 model_param_buffers = 0;
    /** Buffers classified as temporary (contents skipped). */
    u64 temp_buffers = 0;
    /** Buffers whose contents are materialized. */
    u64 permanent_buffers = 0;
    /** Indirect pointer words found inside materialized buffers (§8). */
    u64 indirect_pointer_words = 0;
    /** Bytes of buffer contents materialized (copy-free keeps this tiny). */
    u64 materialized_content_bytes = 0;
    /** Bytes that a full (non-copy-free) dump would have materialized. */
    u64 full_dump_bytes = 0;

    /**
     * Publish every counter under the canonical `analysis.*` metric
     * names (DESIGN.md §12). The struct itself stays the in-memory
     * view; registries are how benches and pipelines consume it.
     */
    void publishTo(MetricsRegistry &registry) const;
};

/**
 * How to read a serialized artifact (deserializeView options).
 */
struct ArtifactReadOptions
{
    /**
     * Load the permanent-buffer contents and pointer-fix sections.
     * Cold starts with RestoreOptions::restore_contents off never touch
     * them, so skipping saves both the decode and the checksum pass
     * over the (potentially large) content payload. Only available for
     * the sectioned format; the flat legacy format is always read in
     * full. Sets Artifact::contents_skipped when it takes effect.
     */
    bool load_permanent_contents = true;
    /** Verify each loaded section's CRC32 before decoding it. */
    bool verify_crc = true;
    /**
     * Decode graph-blueprint sections with this many threads (<= 1:
     * serial). Ignored when @p pool is set. The decoded artifact is
     * bit-identical for every thread count.
     */
    u32 threads = 1;
    /** Optional caller-owned pool to run the decode on. */
    ThreadPool *pool = nullptr;
    /**
     * Deterministic fault injection for the deserialize and CRC paths
     * (FaultPoint::kArtifactDeserialize / kArtifactCrc). Null disables.
     */
    FaultInjector *fault = nullptr;
    /**
     * Span sink for the deserialize (artifact.deserialize span). Null
     * disables, at zero cost.
     */
    TraceRecorder *trace = nullptr;
};

/** The complete materialized state. */
struct Artifact
{
    static constexpr u32 kMagic = 0x4d445341; // "MDSA"
    /** Sectioned format (header + per-section offset/size/CRC table). */
    static constexpr u32 kVersion = 5;
    /** The flat tagged stream of earlier releases; still readable. */
    static constexpr u32 kLegacyVersion = 4;

    std::string model_name;
    u64 model_seed = 0;

    /** §6: the profiled free GPU memory for KV-cache initialization. */
    u64 free_gpu_memory = 0;

    /** The full recorded (de)allocation sequence, process-start order. */
    std::vector<AllocOp> ops;
    /**
     * Number of leading ops that the online phase produces organically
     * (structure initialization); replay starts at this op index.
     */
    u64 organic_op_count = 0;
    /** Number of alloc (not free) events within the organic prefix. */
    u64 organic_alloc_count = 0;

    std::vector<GraphBlueprint> graphs;
    std::vector<PermanentBuffer> permanent;
    /** Nested pointer words to rewrite after replay (§8 extension). */
    std::vector<PointerWordFix> pointer_fixes;
    /** Engine buffer tag -> allocation index. */
    std::map<std::string, u64> tags;

    AnalysisStats stats;

    // ---- runtime-only fields (never serialized) -----------------------

    /**
     * Byte size of the stream this artifact was parsed from, or 0 when
     * it was built in memory. Lets the restore path charge the
     * simulated artifact-read time without re-serializing.
     */
    u64 serialized_size_hint = 0;
    /**
     * True when the permanent-contents / pointer-fix sections were
     * skipped at read time (ArtifactReadOptions); such an artifact must
     * only be restored with restore_contents off.
     */
    bool contents_skipped = false;

    /** Serialize to the sectioned format (kVersion). */
    std::vector<u8> serialize() const;

    /**
     * Serialize to the flat legacy format (kLegacyVersion). Kept so
     * compatibility with pre-sectioned artifacts stays testable.
     */
    std::vector<u8> serializeFlat() const;

    /** Parse from an owned buffer; validates magic and version. */
    static StatusOr<Artifact> deserialize(std::vector<u8> bytes);

    /**
     * Zero-copy parse: decodes out of @p bytes without copying the
     * buffer. Understands both the sectioned and the flat legacy
     * format; section CRCs, content skipping and parallel graph decode
     * apply to the sectioned format only.
     */
    static StatusOr<Artifact>
    deserializeView(std::span<const u8> bytes,
                    const ArtifactReadOptions &options = {});

    /**
     * The artifact's on-disk size: the parse-time hint when present,
     * else the size of a fresh serialization.
     */
    u64 serializedByteSize() const;

    /** Total graph nodes across batch sizes. */
    u64 totalNodes() const;
};

} // namespace medusa::core

#endif // MEDUSA_MEDUSA_ARTIFACT_H
