/**
 * @file
 * Online-phase configuration and reporting types, shared by the
 * single-GPU engine (restore.h), the replay building blocks (replay.h)
 * and the tensor-parallel driver (tp.h).
 */

#ifndef MEDUSA_MEDUSA_RESTORE_OPTIONS_H
#define MEDUSA_MEDUSA_RESTORE_OPTIONS_H

#include <vector>

#include "common/types.h"

namespace medusa::core {

/** Online-phase configuration (ablation switches). */
struct RestoreOptions
{
    /** §5.2 first-layer triggering-kernels + module enumeration. */
    bool use_triggering_kernels = true;
    /** dlsym()+cudaGetFuncBySymbol path for symbol-table kernels. */
    bool use_dlsym = true;
    /** Restore permanent-buffer contents (off only for experiments). */
    bool restore_contents = true;
    /** Compare restored-graph outputs against eager forwarding. */
    bool validate = false;
    /** Batch sizes to validate when validate is set. */
    std::vector<u32> validate_batch_sizes = {1, 4, 64};
    /**
     * Run medusa-lint over the artifact before restoring and refuse to
     * replay on any error-severity diagnostic — a fast static check
     * that catches corrupt artifacts before they touch device state.
     */
    bool lint = false;
    /**
     * Host threads for the graph-rebuild stage (restoreGraphs): 1 =
     * serial, 0 = one per hardware thread. Parallelism only shrinks
     * host wall-clock; the simulated StageTimes, the RestoreReport and
     * every restored graph are bit-identical for all values.
     */
    u32 restore_threads = 1;
};

/** What the restoration did (for benches and tests). */
struct RestoreReport
{
    u64 nodes_restored = 0;
    u64 graphs_restored = 0;
    u64 kernels_via_dlsym = 0;
    u64 kernels_via_enumeration = 0;
    u64 replayed_allocs = 0;
    u64 replayed_frees = 0;
    u64 restored_content_bytes = 0;
    /** Indirect pointer words rewritten after replay (§8 extension). */
    u64 indirect_pointers_fixed = 0;
    bool validated = false;
};

} // namespace medusa::core

#endif // MEDUSA_MEDUSA_RESTORE_OPTIONS_H
