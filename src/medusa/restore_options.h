/**
 * @file
 * Online-phase configuration and reporting types, shared by the
 * single-GPU engine (restore.h), the replay building blocks (replay.h)
 * and the tensor-parallel driver (tp.h).
 */

#ifndef MEDUSA_MEDUSA_RESTORE_OPTIONS_H
#define MEDUSA_MEDUSA_RESTORE_OPTIONS_H

#include <string>
#include <vector>

#include "common/cold_start_report.h"
#include "common/fault.h"
#include "common/pipeline_options.h"
#include "common/types.h"

namespace medusa::core {

/**
 * What a failed restore attempt degrades to. In every mode the
 * simulated GPU process is first rolled back to pristine (the restore
 * is transactional), so the fallback path always starts from a clean
 * process, exactly as if the instance had been relaunched.
 */
enum class FallbackMode : u8
{
    /** Propagate the failure; the cold start fails. */
    kFail,
    /** Run the classic profile+capture cold start on the clean process. */
    kVanillaColdStart,
    /** Retry the restore (with backoff) before degrading to vanilla. */
    kRetryThenVanilla,
};

/** Policy for degrading a failed restore (see FallbackMode). */
struct FallbackPolicy
{
    FallbackMode mode = FallbackMode::kFail;
    /** Total restore attempts before vanilla (kRetryThenVanilla). */
    u32 max_attempts = 3;
    /** Simulated pause before the first retry. */
    f64 backoff_sec = 0.05;
    /** Growth factor applied to the pause after each retry. */
    f64 backoff_multiplier = 2.0;
};

/** Online-phase configuration (ablation switches). */
struct RestoreOptions
{
    /** §5.2 first-layer triggering-kernels + module enumeration. */
    bool use_triggering_kernels = true;
    /** dlsym()+cudaGetFuncBySymbol path for symbol-table kernels. */
    bool use_dlsym = true;
    /** Restore permanent-buffer contents (off only for experiments). */
    bool restore_contents = true;
    /**
     * Cross-cutting pipeline knobs (lint gate, validation, fault
     * injection, trace/metrics sinks) — shared shape with
     * OfflineOptions and ClusterOptions.
     */
    PipelineOptions pipeline;
    /**
     * Host threads for the graph-rebuild stage (restoreGraphs): 1 =
     * serial, 0 = one per hardware thread. Parallelism only shrinks
     * host wall-clock; the simulated StageTimes, the RestoreReport and
     * every restored graph are bit-identical for all values.
     */
    u32 restore_threads = 1;
    /** What to do when a restore attempt fails mid-flight. */
    FallbackPolicy fallback;
};

/**
 * RestoreReport moved to common/cold_start_report.h with the unified
 * reporting schema; core::RestoreReport remains valid via this alias.
 */
using medusa::RestoreReport;

} // namespace medusa::core

#endif // MEDUSA_MEDUSA_RESTORE_OPTIONS_H
