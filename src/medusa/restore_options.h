/**
 * @file
 * Online-phase configuration and reporting types, shared by the
 * single-GPU engine (restore.h), the replay building blocks (replay.h)
 * and the tensor-parallel driver (tp.h).
 */

#ifndef MEDUSA_MEDUSA_RESTORE_OPTIONS_H
#define MEDUSA_MEDUSA_RESTORE_OPTIONS_H

#include <string>
#include <vector>

#include "common/fault.h"
#include "common/types.h"

namespace medusa::core {

/**
 * What a failed restore attempt degrades to. In every mode the
 * simulated GPU process is first rolled back to pristine (the restore
 * is transactional), so the fallback path always starts from a clean
 * process, exactly as if the instance had been relaunched.
 */
enum class FallbackMode : u8
{
    /** Propagate the failure; the cold start fails. */
    kFail,
    /** Run the classic profile+capture cold start on the clean process. */
    kVanillaColdStart,
    /** Retry the restore (with backoff) before degrading to vanilla. */
    kRetryThenVanilla,
};

/** Policy for degrading a failed restore (see FallbackMode). */
struct FallbackPolicy
{
    FallbackMode mode = FallbackMode::kFail;
    /** Total restore attempts before vanilla (kRetryThenVanilla). */
    u32 max_attempts = 3;
    /** Simulated pause before the first retry. */
    f64 backoff_sec = 0.05;
    /** Growth factor applied to the pause after each retry. */
    f64 backoff_multiplier = 2.0;
};

/** Online-phase configuration (ablation switches). */
struct RestoreOptions
{
    /** §5.2 first-layer triggering-kernels + module enumeration. */
    bool use_triggering_kernels = true;
    /** dlsym()+cudaGetFuncBySymbol path for symbol-table kernels. */
    bool use_dlsym = true;
    /** Restore permanent-buffer contents (off only for experiments). */
    bool restore_contents = true;
    /** Compare restored-graph outputs against eager forwarding. */
    bool validate = false;
    /** Batch sizes to validate when validate is set. */
    std::vector<u32> validate_batch_sizes = {1, 4, 64};
    /**
     * Run medusa-lint over the artifact before restoring and refuse to
     * replay on any error-severity diagnostic — a fast static check
     * that catches corrupt artifacts before they touch device state.
     */
    bool lint = false;
    /**
     * Host threads for the graph-rebuild stage (restoreGraphs): 1 =
     * serial, 0 = one per hardware thread. Parallelism only shrinks
     * host wall-clock; the simulated StageTimes, the RestoreReport and
     * every restored graph are bit-identical for all values.
     */
    u32 restore_threads = 1;
    /** What to do when a restore attempt fails mid-flight. */
    FallbackPolicy fallback;
    /**
     * Deterministic fault injection (test/bench only). Null disables
     * every hook; the restore path is then bit-identical to a build
     * without the subsystem.
     */
    FaultInjector *fault = nullptr;
};

/** What the restoration did (for benches and tests). */
struct RestoreReport
{
    u64 nodes_restored = 0;
    u64 graphs_restored = 0;
    u64 kernels_via_dlsym = 0;
    u64 kernels_via_enumeration = 0;
    u64 replayed_allocs = 0;
    u64 replayed_frees = 0;
    u64 restored_content_bytes = 0;
    /** Indirect pointer words rewritten after replay (§8 extension). */
    u64 indirect_pointers_fixed = 0;
    bool validated = false;

    // ---- transactional-restore outcome (all zero without faults) -----
    /** Restore attempts started (1 for a clean first-try success). */
    u64 restore_attempts = 0;
    /** Attempts that failed and were rolled back. */
    u64 restore_failures = 0;
    /** Failed attempts that were retried (kRetryThenVanilla). */
    u64 retries = 0;
    /** True when the engine degraded to the vanilla cold start. */
    bool fallback_vanilla = false;
    /** Simulated seconds burned in failed restore attempts. */
    f64 wasted_restore_sec = 0;
    /** Simulated seconds slept in retry backoff. */
    f64 backoff_sec = 0;
    /** toString() of the last attempt failure (empty when none). */
    std::string last_failure;
};

} // namespace medusa::core

#endif // MEDUSA_MEDUSA_RESTORE_OPTIONS_H
