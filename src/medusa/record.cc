#include "medusa/record.h"

namespace medusa::core {

void
Recorder::onAlloc(u64 seq_index, DeviceAddr addr, u64 logical_size,
                  u64 backing_size)
{
    MEDUSA_CHECK(seq_index == allocs_.size(),
                 "allocation sequence index out of step");
    AllocRecord rec;
    rec.alloc_index = seq_index;
    rec.addr = addr;
    rec.logical_size = logical_size;
    rec.backing_size = backing_size;
    rec.op_pos_alloc = ops_.size();
    allocs_.push_back(rec);
    live_[addr] = seq_index;
    by_base_[addr].push_back(seq_index);

    AllocOp op;
    op.kind = AllocOp::kAlloc;
    op.logical_size = logical_size;
    op.backing_size = backing_size;
    ops_.push_back(op);
}

void
Recorder::onFree(DeviceAddr addr)
{
    auto it = live_.find(addr);
    MEDUSA_CHECK(it != live_.end(), "free of unrecorded buffer");
    const u64 alloc_index = it->second;
    live_.erase(it);
    allocs_[alloc_index].op_pos_free = static_cast<i64>(ops_.size());

    AllocOp op;
    op.kind = AllocOp::kFree;
    op.freed_alloc_index = alloc_index;
    ops_.push_back(op);
}

void
Recorder::onKernelLaunch(KernelAddr fn, const simcuda::RawParams &params,
                         bool capturing)
{
    if (!capturing || current_graph_ < 0) {
        return; // only captured launches become graph nodes
    }
    CapturedLaunch launch;
    launch.fn = fn;
    launch.params = params;
    launch.op_pos = ops_.size();
    graph_launches_[static_cast<u32>(current_graph_)].push_back(
        std::move(launch));
}

void
Recorder::onTagBuffer(const std::string &tag, DeviceAddr addr)
{
    auto it = live_.find(addr);
    MEDUSA_CHECK(it != live_.end(), "tag of unrecorded buffer " << tag);
    tags_[tag] = it->second;
}

void
Recorder::markOrganicBoundary()
{
    organic_op_count_ = ops_.size();
    organic_alloc_count_ = allocs_.size();
}

void
Recorder::markCaptureStageBegin()
{
    capture_stage_op_pos_ = ops_.size();
}

void
Recorder::beginGraph(u32 batch_size)
{
    MEDUSA_CHECK(current_graph_ < 0, "nested graph recording");
    current_graph_ = static_cast<i32>(batch_size);
    graph_launches_[batch_size].clear();
}

void
Recorder::endGraph()
{
    MEDUSA_CHECK(current_graph_ >= 0, "endGraph without beginGraph");
    current_graph_ = -1;
}

std::vector<const AllocRecord *>
Recorder::recordsContaining(DeviceAddr value) const
{
    // Driver blocks never overlap, so at most one base range can
    // contain the value; pool reuse stacks multiple records on the same
    // base over time.
    auto it = by_base_.upper_bound(value);
    if (it == by_base_.begin()) {
        return {};
    }
    --it;
    std::vector<const AllocRecord *> out;
    for (u64 index : it->second) {
        const AllocRecord &rec = allocs_[index];
        if (value >= rec.addr && value < rec.addr + rec.logical_size) {
            out.push_back(&rec);
        }
    }
    return out;
}

} // namespace medusa::core
