/**
 * @file
 * The online phase: a Medusa cold start that restores materialized
 * state instead of profiling and capturing (paper §3 right half).
 *
 * Online control flow (deterministic, mirroring the offline run):
 *   1. structure init runs organically; the interceptor verifies it
 *      reproduces the artifact's allocation prefix;
 *   2. tokenizer loads;
 *   3. KV-init is restored: the artifact is read and the materialized
 *      free-memory value replaces the profiling forwarding (§6);
 *   4. the recorded buffer (de)allocation sequence is replayed and the
 *      per-event addresses recorded (§4.2); engine buffers re-bind via
 *      tags;
 *   5. weights load;
 *   6. permanent-buffer contents are restored (§4.3);
 *   7. the model's first layer is warmed up and captured — the
 *      triggering-kernels that force every module to load — and kernel
 *      addresses are restored via dlsym() where visible, else via
 *      module enumeration (§5);
 *   8. each materialized graph is rebuilt (pointers patched via the
 *      indirect index pointer table) and instantiated.
 *
 * The visible loading latency composes steps 3-8 against the weights
 * loading, which they overlap (Figure 8(c)).
 */

#ifndef MEDUSA_MEDUSA_RESTORE_H
#define MEDUSA_MEDUSA_RESTORE_H

#include <memory>

#include "llm/engine.h"
#include "medusa/artifact.h"
#include "medusa/restore_options.h"

namespace medusa::core {

/**
 * A serving engine cold-started through Medusa's online phase.
 */
class MedusaEngine
{
  public:
    struct Options
    {
        llm::ModelConfig model;
        u64 aslr_seed = 2;
        const CostModel *cost = nullptr;
        RestoreOptions restore;
        bool warm_container = true;
    };

    /**
     * Run the online cold start against a materialized artifact.
     * Fails with kValidationFailure if the artifact does not match the
     * model or (when options.restore.pipeline.validate) outputs
     * mismatch.
     */
    static StatusOr<std::unique_ptr<MedusaEngine>>
    coldStart(const Options &opts, const Artifact &artifact);

    llm::ModelRuntime &runtime() { return *runtime_; }

    /**
     * The consolidated report for this cold start: outcome, stage
     * times, restore counters, spans and a metrics snapshot
     * (DESIGN.md §12).
     */
    const ColdStartReport &coldStartReport() const { return report_; }

    /**
     * @deprecated Thin view over coldStartReport().times; new code
     * should consume the consolidated report.
     */
    const llm::StageTimes &times() const { return report_.times; }

    /**
     * @deprecated Thin view over coldStartReport().restore; new code
     * should consume the consolidated report.
     */
    const RestoreReport &report() const { return report_.restore; }

  private:
    MedusaEngine() = default;

    /** Declared before the runtime so it outlives the allocator that
     *  holds a raw pointer to it. */
    std::unique_ptr<simcuda::AllocObserver> interceptor_;
    std::unique_ptr<llm::ModelRuntime> runtime_;
    ColdStartReport report_;
};

} // namespace medusa::core

#endif // MEDUSA_MEDUSA_RESTORE_H
