/**
 * @file
 * The online phase: a Medusa cold start that restores materialized
 * state instead of profiling and capturing (paper §3 right half).
 *
 * Online control flow (deterministic, mirroring the offline run):
 *   1. structure init runs organically; the interceptor verifies it
 *      reproduces the artifact's allocation prefix;
 *   2. tokenizer loads;
 *   3. KV-init is restored: the artifact is read and the materialized
 *      free-memory value replaces the profiling forwarding (§6);
 *   4. the recorded buffer (de)allocation sequence is replayed and the
 *      per-event addresses recorded (§4.2); engine buffers re-bind via
 *      tags;
 *   5. weights load;
 *   6. permanent-buffer contents are restored (§4.3);
 *   7. the model's first layer is warmed up and captured — the
 *      triggering-kernels that force every module to load — and kernel
 *      addresses are restored via dlsym() where visible, else via
 *      module enumeration (§5);
 *   8. each materialized graph is rebuilt (pointers patched via the
 *      indirect index pointer table) and instantiated.
 *
 * The visible loading latency composes steps 3-8 against the weights
 * loading, which they overlap (Figure 8(c)).
 */

#ifndef MEDUSA_MEDUSA_RESTORE_H
#define MEDUSA_MEDUSA_RESTORE_H

#include <functional>
#include <memory>

#include "llm/engine.h"
#include "medusa/artifact.h"
#include "medusa/image.h"
#include "medusa/restore_options.h"

namespace medusa::core {

class ReplayTable;

/**
 * A serving engine cold-started through Medusa's online phase.
 */
class MedusaEngine
{
  public:
    struct Options
    {
        llm::ModelConfig model;
        u64 aslr_seed = 2;
        const CostModel *cost = nullptr;
        RestoreOptions restore;
        bool warm_container = true;
    };

    /**
     * Run the online cold start against a materialized artifact.
     * Fails with kValidationFailure if the artifact does not match the
     * model or (when options.restore.pipeline.validate) outputs
     * mismatch.
     */
    static StatusOr<std::unique_ptr<MedusaEngine>>
    coldStart(const Options &opts, const Artifact &artifact);

    /**
     * The v6 relocation-patch online phase (DESIGN.md §13): restore
     * against an opened MaterializedImage instead of a v5 artifact.
     * Steps 1-6 match coldStart; steps 7-8 are replaced by a single
     * patch pass (template copy + relocations) and direct instantiation
     * from the patched arrays — no CudaGraph rebuild, no per-node
     * kernel resolution. Same transactional attempt loop, fallback
     * policy and fidelity contract: restore fingerprints and decode
     * logits are bit-identical to the rebuild path's. The image must
     * outlive the returned engine (its replay interceptor observes
     * against the image's op sequence).
     */
    static StatusOr<std::unique_ptr<MedusaEngine>>
    coldStartFromImage(const Options &opts, const MaterializedImage &image);

    llm::ModelRuntime &runtime() { return *runtime_; }

    /**
     * The consolidated report for this cold start: outcome, stage
     * times, restore counters, spans and a metrics snapshot
     * (DESIGN.md §12).
     */
    const ColdStartReport &coldStartReport() const { return report_; }

  private:
    MedusaEngine() = default;

    using MakeTableFn = std::function<std::unique_ptr<ReplayTable>()>;
    using AttemptFn =
        std::function<Status(const Options &, llm::ModelRuntime &,
                             ReplayTable &, llm::StageTimes &,
                             RestoreReport &)>;

    /**
     * The shared transactional attempt loop: journalled attempts,
     * rollback-on-failure, retry backoff and the vanilla fallback tail.
     * The artifact and image cold starts differ only in how a replay
     * table is built and what one attempt does.
     */
    static StatusOr<std::unique_ptr<MedusaEngine>>
    runTransactional(Options opts, TraceRecorder *user_trace,
                     const MakeTableFn &make_table,
                     const AttemptFn &attempt);

    /** Declared before the runtime so it outlives the allocator that
     *  holds a raw pointer to it. */
    std::unique_ptr<simcuda::AllocObserver> interceptor_;
    std::unique_ptr<llm::ModelRuntime> runtime_;
    ColdStartReport report_;
};

} // namespace medusa::core

#endif // MEDUSA_MEDUSA_RESTORE_H
