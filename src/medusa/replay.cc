#include "medusa/replay.h"

#include <atomic>
#include <cstring>

namespace medusa::core {

using llm::ModelRuntime;
using simcuda::CudaGraph;
using simcuda::RawParams;

ReplayTable::ReplayTable(const Artifact *artifact)
    : organic_alloc_count_(artifact->organic_alloc_count)
{
    alloc_ops_.reserve(artifact->ops.size());
    for (const AllocOp &op : artifact->ops) {
        if (op.kind == AllocOp::kAlloc) {
            alloc_ops_.push_back(&op);
        }
    }
}

ReplayTable::ReplayTable(std::span<const AllocOp> ops,
                         u64 organic_alloc_count)
    : organic_alloc_count_(organic_alloc_count)
{
    alloc_ops_.reserve(ops.size());
    for (const AllocOp &op : ops) {
        if (op.kind == AllocOp::kAlloc) {
            alloc_ops_.push_back(&op);
        }
    }
}

void
ReplayTable::onAlloc(u64 seq_index, DeviceAddr addr, u64 logical_size,
                     u64 backing_size)
{
    (void)backing_size;
    MEDUSA_CHECK(seq_index == addr_of_.size(),
                 "online allocation sequence out of step");
    addr_of_.push_back(addr);
    if (!mismatch_.empty()) {
        return;
    }
    if (seq_index < organic_alloc_count_) {
        if (seq_index >= alloc_ops_.size() ||
            alloc_ops_[seq_index]->logical_size != logical_size) {
            mismatch_ = "organic allocation " +
                        std::to_string(seq_index) +
                        " diverges from the materialized sequence";
        }
    }
}

StatusOr<DeviceAddr>
ReplayTable::addrOf(u64 alloc_index) const
{
    if (alloc_index >= addr_of_.size()) {
        return internalError("indirect index " +
                             std::to_string(alloc_index) +
                             " beyond replayed sequence");
    }
    return addr_of_[alloc_index];
}

Status
ReplayTable::organicStatus() const
{
    if (!mismatch_.empty()) {
        return validationFailure(mismatch_);
    }
    return Status::ok();
}

Status
replayAllocSequence(const Artifact &artifact, ModelRuntime &rt,
                    const ReplayTable &table, RestoreReport &report,
                    FaultInjector *fault)
{
    return replayAllocSequence(std::span<const AllocOp>(artifact.ops),
                               artifact.organic_op_count, rt, table,
                               report, fault);
}

Status
replayAllocSequence(std::span<const AllocOp> ops, u64 organic_op_count,
                    ModelRuntime &rt, const ReplayTable &table,
                    RestoreReport &report, FaultInjector *fault)
{
    MEDUSA_FAULT_POINT(fault, FaultPoint::kReplayPrefix,
                       "organic prefix handoff at op " +
                           std::to_string(organic_op_count));
    simcuda::CachingAllocator &alloc = rt.allocator();
    for (u64 pos = organic_op_count; pos < ops.size(); ++pos) {
        const AllocOp &op = ops[pos];
        if (op.kind == AllocOp::kAlloc) {
            MEDUSA_FAULT_POINT(fault, FaultPoint::kReplayAlloc,
                               "replayed op " + std::to_string(pos));
            MEDUSA_ASSIGN_OR_RETURN(
                DeviceAddr addr,
                alloc.allocate(op.logical_size, op.backing_size));
            (void)addr; // the interceptor records it by index
            ++report.replayed_allocs;
            rt.clock().advance(units::usToNs(
                rt.process().cost().restore_replay_alloc_us));
        } else {
            MEDUSA_ASSIGN_OR_RETURN(DeviceAddr addr,
                                    table.addrOf(op.freed_alloc_index));
            MEDUSA_RETURN_IF_ERROR(alloc.free(addr));
            ++report.replayed_frees;
        }
    }
    return Status::ok();
}

Status
rebindEngineBuffers(const Artifact &artifact,
                    const llm::ModelConfig &m, const ReplayTable &table,
                    ModelRuntime &rt)
{
    return rebindEngineBuffers(artifact.tags, artifact.free_gpu_memory,
                               m, table, rt);
}

Status
rebindEngineBuffers(const std::map<std::string, u64> &tags,
                    u64 free_gpu_memory, const llm::ModelConfig &m,
                    const ReplayTable &table, ModelRuntime &rt)
{
    auto tagged = [&](const std::string &tag) -> StatusOr<DeviceAddr> {
        auto it = tags.find(tag);
        if (it == tags.end()) {
            return validationFailure("artifact missing buffer tag " +
                                     tag);
        }
        return table.addrOf(it->second);
    };

    llm::ForwardBuffers bufs;
    const llm::FuncDims &f = m.func;
    bufs.max_bs = 256;
    bufs.max_tokens = f.max_batched_tokens;
    bufs.max_blocks_per_seq = (f.max_seq + f.block_size - 1) /
                              f.block_size;
    MEDUSA_ASSIGN_OR_RETURN(bufs.token_ids, tagged("token_ids"));
    MEDUSA_ASSIGN_OR_RETURN(bufs.positions, tagged("positions"));
    MEDUSA_ASSIGN_OR_RETURN(bufs.seq_starts, tagged("seq_starts"));
    MEDUSA_ASSIGN_OR_RETURN(bufs.slot_mapping, tagged("slot_mapping"));
    MEDUSA_ASSIGN_OR_RETURN(bufs.block_tables, tagged("block_tables"));
    MEDUSA_ASSIGN_OR_RETURN(bufs.seq_lens, tagged("seq_lens"));
    MEDUSA_ASSIGN_OR_RETURN(bufs.logits, tagged("logits"));
    MEDUSA_ASSIGN_OR_RETURN(bufs.sampled, tagged("sampled"));

    llm::KvCache kv;
    for (u32 l = 0; l < m.num_layers; ++l) {
        MEDUSA_ASSIGN_OR_RETURN(DeviceAddr k,
                                tagged("kv.k." + std::to_string(l)));
        MEDUSA_ASSIGN_OR_RETURN(DeviceAddr v,
                                tagged("kv.v." + std::to_string(l)));
        kv.k_layers.push_back(k);
        kv.v_layers.push_back(v);
    }
    // Rederive the accounting from the materialized free-memory value —
    // the §6 restoration that replaces the profiling forwarding.
    const u64 budget = static_cast<u64>(
        static_cast<f64>(free_gpu_memory) * 0.9);
    kv.real_num_blocks = budget / m.kvBlockBytes();
    kv.logical_bytes = kv.real_num_blocks * m.kvBlockBytes();
    kv.blocks = llm::BlockManager(f.num_blocks);
    return rt.adoptBuffers(bufs, std::move(kv));
}

Status
restoreContents(const Artifact &artifact, ModelRuntime &rt,
                const ReplayTable &table, RestoreReport &report)
{
    for (const PermanentBuffer &pb : artifact.permanent) {
        MEDUSA_ASSIGN_OR_RETURN(DeviceAddr addr,
                                table.addrOf(pb.alloc_index));
        if (!pb.contents.empty()) {
            MEDUSA_RETURN_IF_ERROR(rt.process().memcpyH2D(
                addr, pb.contents.data(), pb.contents.size(),
                pb.contents.size()));
        }
        report.restored_content_bytes += pb.contents.size();
    }
    // §8 extension: rewrite indirect pointer words inside restored
    // buffers to the replayed addresses of their targets.
    for (const PointerWordFix &fix : artifact.pointer_fixes) {
        MEDUSA_ASSIGN_OR_RETURN(DeviceAddr buffer,
                                table.addrOf(fix.buffer_alloc_index));
        MEDUSA_ASSIGN_OR_RETURN(DeviceAddr target,
                                table.addrOf(fix.target_alloc_index));
        const u64 word = target + fix.target_offset;
        MEDUSA_RETURN_IF_ERROR(rt.process().memcpyH2D(
            buffer + fix.byte_offset, &word, sizeof(word),
            sizeof(word)));
        ++report.indirect_pointers_fixed;
    }
    return Status::ok();
}

StatusOr<std::unordered_map<std::string, KernelAddr>>
buildKernelNameTable(ModelRuntime &rt, FaultInjector *fault)
{
    std::unordered_map<std::string, KernelAddr> name_table;
    MEDUSA_ASSIGN_OR_RETURN(CudaGraph first_layer,
                            rt.captureFirstLayer());
    (void)first_layer; // its purpose is the module loads it forced
    for (const std::string &module :
         rt.process().modules().loadedModules()) {
        MEDUSA_FAULT_POINT(fault, FaultPoint::kKernelEnumeration,
                           "enumerating " + module);
        MEDUSA_ASSIGN_OR_RETURN(
            auto addrs, rt.process().cuModuleEnumerateFunctions(module));
        for (KernelAddr addr : addrs) {
            MEDUSA_ASSIGN_OR_RETURN(std::string name,
                                    rt.process().cuFuncGetName(addr));
            name_table[name] = addr;
        }
    }
    return name_table;
}

namespace {

/**
 * Restore one node's kernel address (§5): dlsym where visible, else the
 * enumeration-built name table. Mutates process state (clock, module
 * loads) and the report — callers keep this on the restoring thread.
 */
StatusOr<KernelAddr>
resolveKernel(const std::string &kernel_name,
              const std::string &module_name, ModelRuntime &rt,
              const std::unordered_map<std::string, KernelAddr>
                  &name_table,
              const RestoreOptions &options, RestoreReport &report)
{
    if (options.use_dlsym) {
        MEDUSA_FAULT_POINT(options.pipeline.fault, FaultPoint::kKernelDlsym,
                           "dlsym " + kernel_name);
        auto sym = rt.process().dlsym(module_name, kernel_name);
        if (sym.isOk()) {
            auto addr = rt.process().cudaGetFuncBySymbol(*sym);
            if (addr.isOk()) {
                ++report.kernels_via_dlsym;
                return *addr;
            }
        }
    }
    auto it = name_table.find(kernel_name);
    if (it == name_table.end()) {
        return notFound("cannot restore kernel address for " +
                        kernel_name +
                        (options.use_triggering_kernels
                             ? " (not in any loaded module)"
                             : " (hidden; triggering-kernels disabled)"));
    }
    ++report.kernels_via_enumeration;
    return it->second;
}

/**
 * The pure tail of a graph rebuild: dependency lists and parameter
 * patching through the (const) replay table. No clock, no report, no
 * process state — safe to run concurrently for distinct graphs.
 */
StatusOr<CudaGraph>
buildGraphFromBlueprint(const GraphBlueprint &bp,
                        const std::vector<KernelAddr> &fns,
                        const ReplayTable &table)
{
    CudaGraph graph;
    std::vector<std::vector<simcuda::NodeId>> deps(bp.nodes.size());
    for (const auto &[src, dst] : bp.edges) {
        deps[dst].push_back(src);
    }
    for (u32 ni = 0; ni < bp.nodes.size(); ++ni) {
        const NodeBlueprint &nb = bp.nodes[ni];
        RawParams params;
        params.reserve(nb.params.size());
        for (const ParamSpec &spec : nb.params) {
            if (spec.kind == ParamSpec::kConstant) {
                params.push_back(spec.constant_bytes);
            } else {
                MEDUSA_ASSIGN_OR_RETURN(
                    DeviceAddr base, table.addrOf(spec.alloc_index));
                const u64 value = base + spec.offset;
                std::vector<u8> bytes(8);
                std::memcpy(bytes.data(), &value, 8);
                params.push_back(std::move(bytes));
            }
        }
        graph.addKernelNode(fns[ni], std::move(params), nb.timing,
                            deps[ni]);
    }
    return graph;
}

Status
validateEdges(const GraphBlueprint &bp)
{
    for (const auto &[src, dst] : bp.edges) {
        if (dst >= bp.nodes.size() || src >= dst) {
            return validationFailure("corrupt edge in artifact");
        }
    }
    return Status::ok();
}

} // namespace

StatusOr<CudaGraph>
rebuildGraph(const GraphBlueprint &bp, const ReplayTable &table,
             ModelRuntime &rt,
             const std::unordered_map<std::string, KernelAddr>
                 &name_table,
             const RestoreOptions &options, RestoreReport &report)
{
    const CostModel &cost = rt.process().cost();
    MEDUSA_RETURN_IF_ERROR(validateEdges(bp));
    std::vector<KernelAddr> fns(bp.nodes.size());
    for (u32 ni = 0; ni < bp.nodes.size(); ++ni) {
        MEDUSA_ASSIGN_OR_RETURN(
            fns[ni], resolveKernel(bp.nodes[ni].kernel_name,
                                   bp.nodes[ni].module_name, rt,
                                   name_table, options, report));
        ++report.nodes_restored;
        rt.clock().advance(units::usToNs(cost.restore_per_node_us));
    }
    return buildGraphFromBlueprint(bp, fns, table);
}

Status
restoreGraphs(const Artifact &artifact, const ReplayTable &table,
              ModelRuntime &rt,
              const std::unordered_map<std::string, KernelAddr>
                  &name_table,
              const RestoreOptions &options, RestoreReport &report,
              ThreadPool *pool)
{
    const CostModel &cost = rt.process().cost();
    const std::size_t n = artifact.graphs.size();
    TraceRecorder *rec = options.pipeline.trace;

    // Phase 1 — serial resolution: every clock charge and counter
    // mutation stays on this thread, in exact artifact order.
    Span resolve_span(rec, "restore.graphs.resolve", "restore");
    std::vector<std::vector<KernelAddr>> fns(n);
    for (std::size_t g = 0; g < n; ++g) {
        const GraphBlueprint &bp = artifact.graphs[g];
        MEDUSA_RETURN_IF_ERROR(validateEdges(bp));
        fns[g].resize(bp.nodes.size());
        for (u32 ni = 0; ni < bp.nodes.size(); ++ni) {
            MEDUSA_ASSIGN_OR_RETURN(
                fns[g][ni], resolveKernel(bp.nodes[ni].kernel_name,
                                          bp.nodes[ni].module_name, rt,
                                          name_table, options, report));
            ++report.nodes_restored;
            rt.clock().advance(
                units::usToNs(cost.restore_per_node_us));
        }
    }
    resolve_span.end();

    // Phase 2 — parallel pure build into disjoint pre-sized slots.
    // The build does not advance the simulated clock, so the span
    // records fan-out shape (graph count), not virtual time.
    Span build_span(rec, "restore.graphs.build", "restore");
    build_span.arg("graphs", std::to_string(n));
    std::vector<CudaGraph> graphs(n);
    std::vector<Status> statuses(n);
    // The first failing task flips `cancel`; later tasks finish as
    // no-ops instead of building graphs destined for the bin. The
    // parallelFor below joins before anything propagates, so when an
    // error reaches the caller every worker is quiescent — a rollback
    // can never race a straggling build task.
    std::atomic<bool> cancel{false};
    auto buildOne = [&](std::size_t g) {
        if (cancel.load(std::memory_order_acquire)) {
            return; // statuses[g] stays OK: cancelled, not failed
        }
        if (options.pipeline.fault != nullptr) {
            const Status injected = options.pipeline.fault->check(
                FaultPoint::kGraphBuild, "graph " + std::to_string(g));
            if (!injected.isOk()) {
                statuses[g] = injected;
                cancel.store(true, std::memory_order_release);
                return;
            }
        }
        auto built = buildGraphFromBlueprint(artifact.graphs[g],
                                             fns[g], table);
        if (built.isOk()) {
            graphs[g] = std::move(built).value();
        } else {
            statuses[g] = built.status();
            cancel.store(true, std::memory_order_release);
        }
    };
    if (pool != nullptr && n > 1) {
        pool->parallelFor(n, buildOne);
    } else {
        for (std::size_t g = 0; g < n; ++g) {
            buildOne(g);
        }
    }
    // First real failure in artifact order, independent of thread count.
    for (const Status &s : statuses) {
        MEDUSA_RETURN_IF_ERROR(s);
    }
    build_span.end();

    // Phase 3 — serial instantiation in artifact order.
    Span inst_span(rec, "restore.graphs.instantiate", "restore");
    std::vector<std::pair<u32, const CudaGraph *>> ordered;
    ordered.reserve(n);
    for (std::size_t g = 0; g < n; ++g) {
        ordered.emplace_back(artifact.graphs[g].batch_size, &graphs[g]);
    }
    MEDUSA_RETURN_IF_ERROR(
        rt.instantiateGraphs(ordered, options.pipeline.fault));
    report.graphs_restored += n;
    return Status::ok();
}

Status
restoreImageContents(const MaterializedImage &image, ModelRuntime &rt,
                     const ReplayTable &table, RestoreReport &report)
{
    for (const MaterializedImage::PermanentView &pb : image.permanent) {
        MEDUSA_ASSIGN_OR_RETURN(DeviceAddr addr,
                                table.addrOf(pb.alloc_index));
        if (!pb.contents.empty()) {
            MEDUSA_RETURN_IF_ERROR(rt.process().memcpyH2D(
                addr, pb.contents.data(), pb.contents.size(),
                pb.contents.size()));
        }
        report.restored_content_bytes += pb.contents.size();
    }
    for (const PointerWordFix &fix : image.pointer_fixes) {
        MEDUSA_ASSIGN_OR_RETURN(DeviceAddr buffer,
                                table.addrOf(fix.buffer_alloc_index));
        MEDUSA_ASSIGN_OR_RETURN(DeviceAddr target,
                                table.addrOf(fix.target_alloc_index));
        const u64 word = target + fix.target_offset;
        MEDUSA_RETURN_IF_ERROR(rt.process().memcpyH2D(
            buffer + fix.byte_offset, &word, sizeof(word),
            sizeof(word)));
        ++report.indirect_pointers_fixed;
    }
    return Status::ok();
}

StatusOr<std::vector<KernelAddr>>
resolveImageKernels(const MaterializedImage &image, ModelRuntime &rt,
                    const std::unordered_map<std::string, KernelAddr>
                        &name_table,
                    const RestoreOptions &options, RestoreReport &report)
{
    const CostModel &cost = rt.process().cost();
    std::vector<KernelAddr> addrs(image.kernel_table.size());
    for (std::size_t k = 0; k < image.kernel_table.size(); ++k) {
        const MaterializedImage::KernelEntry &entry =
            image.kernel_table[k];
        MEDUSA_ASSIGN_OR_RETURN(
            addrs[k], resolveKernel(entry.name, entry.module, rt,
                                    name_table, options, report));
        ++report.kernels_resolved;
        rt.clock().advance(units::usToNs(cost.restore_per_node_us));
    }
    return addrs;
}

StatusOr<std::vector<u64>>
applyImageRelocations(const MaterializedImage &image,
                      const ReplayTable &table,
                      const std::vector<KernelAddr> &kernel_addrs,
                      ModelRuntime &rt, const RestoreOptions &options,
                      RestoreReport &report)
{
    Span span(options.pipeline.trace, "restore.patch_pass", "restore");
    FaultInjector *fault = options.pipeline.fault;
    std::vector<u64> slots(image.patch_template.begin(),
                           image.patch_template.end());
    // Indexes were bounds-checked once at image open; both sweeps below
    // run unchecked.
    MEDUSA_FAULT_POINT(fault, FaultPoint::kImagePatch,
                       "data relocation batch of " +
                           std::to_string(image.data_relocs.size()));
    for (const MaterializedImage::DataReloc &rel : image.data_relocs) {
        MEDUSA_ASSIGN_OR_RETURN(DeviceAddr base,
                                table.addrOf(rel.alloc_index));
        slots[rel.slot] = base + rel.addend;
    }
    MEDUSA_FAULT_POINT(fault, FaultPoint::kImagePatch,
                       "kernel relocation batch of " +
                           std::to_string(image.kernel_relocs.size()));
    if (kernel_addrs.size() != image.kernel_table.size()) {
        return internalError("kernel address table size mismatch");
    }
    for (const MaterializedImage::KernelReloc &rel :
         image.kernel_relocs) {
        slots[rel.slot] = kernel_addrs[rel.kernel_index];
    }
    const u64 applied =
        image.data_relocs.size() + image.kernel_relocs.size();
    report.relocations_applied += applied;
    rt.clock().advance(units::usToNs(
        rt.process().cost().restore_reloc_us *
        static_cast<f64>(applied)));
    span.arg("relocations", std::to_string(applied));
    return slots;
}

Status
patchRestoreGraphs(const MaterializedImage &image,
                   const std::vector<u64> &patched_slots,
                   ModelRuntime &rt, const RestoreOptions &options,
                   RestoreReport &report)
{
    TraceRecorder *rec = options.pipeline.trace;
    const std::size_t n = image.graphs.size();

    // Carving spans out of the patched slots and the image columns is
    // pure pointer arithmetic — the whole "build" is O(graphs), not
    // O(nodes), which is the point of the format.
    Span patch_span(rec, "restore.graphs.patch", "restore");
    patch_span.arg("graphs", std::to_string(n));
    std::vector<std::pair<u32, simcuda::GpuProcess::PatchedGraphDesc>>
        ordered;
    ordered.reserve(n);
    for (const MaterializedImage::GraphView &g : image.graphs) {
        simcuda::GpuProcess::PatchedGraphDesc desc;
        desc.node_fn = std::span<const KernelAddr>(
            patched_slots.data() + g.fn_slot_begin, g.node_count);
        desc.param_begin = g.param_begin;
        desc.param_bits = std::span<const u64>(
            patched_slots.data() + g.param_slot_begin,
            g.param_len.size());
        desc.param_len = g.param_len;
        desc.timing = g.timings;
        desc.order = g.order;
        desc.edges = g.edges;
        ordered.emplace_back(g.batch_size, desc);
    }
    patch_span.end();

    Span inst_span(rec, "restore.graphs.instantiate", "restore");
    MEDUSA_RETURN_IF_ERROR(
        rt.instantiatePatchedGraphs(ordered, options.pipeline.fault));
    report.graphs_patched += n;
    report.graphs_restored += n;
    report.nodes_restored += image.total_nodes;
    return Status::ok();
}

std::unique_ptr<ThreadPool>
makeRestorePool(const RestoreOptions &options)
{
    const u32 want = options.restore_threads == 0
                         ? ThreadPool::hardwareThreads()
                         : options.restore_threads;
    if (want <= 1) {
        return nullptr;
    }
    // parallelFor participants = workers + the calling thread.
    return std::make_unique<ThreadPool>(want - 1);
}

} // namespace medusa::core
