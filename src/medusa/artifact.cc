#include "medusa/artifact.h"

namespace medusa::core {

namespace {

void
writeParamSpec(BinaryWriter &w, const ParamSpec &p)
{
    w.writeU8(static_cast<u8>(p.kind));
    if (p.kind == ParamSpec::kConstant) {
        w.writeBytes(p.constant_bytes);
    } else {
        w.writeU64(p.alloc_index);
        w.writeU64(p.offset);
    }
}

StatusOr<ParamSpec>
readParamSpec(BinaryReader &r)
{
    ParamSpec p;
    MEDUSA_ASSIGN_OR_RETURN(u8 kind, r.readU8());
    if (kind > ParamSpec::kIndirect) {
        return internalError("bad ParamSpec kind");
    }
    p.kind = static_cast<ParamSpec::Kind>(kind);
    if (p.kind == ParamSpec::kConstant) {
        MEDUSA_ASSIGN_OR_RETURN(p.constant_bytes, r.readBytes());
    } else {
        MEDUSA_ASSIGN_OR_RETURN(p.alloc_index, r.readU64());
        MEDUSA_ASSIGN_OR_RETURN(p.offset, r.readU64());
    }
    return p;
}

void
writeNode(BinaryWriter &w, const NodeBlueprint &n)
{
    w.writeString(n.kernel_name);
    w.writeString(n.module_name);
    w.writeF64(n.timing.flops);
    w.writeF64(n.timing.bytes);
    w.writeVector(n.params, writeParamSpec);
}

StatusOr<NodeBlueprint>
readNode(BinaryReader &r)
{
    NodeBlueprint n;
    MEDUSA_ASSIGN_OR_RETURN(n.kernel_name, r.readString());
    MEDUSA_ASSIGN_OR_RETURN(n.module_name, r.readString());
    MEDUSA_ASSIGN_OR_RETURN(n.timing.flops, r.readF64());
    MEDUSA_ASSIGN_OR_RETURN(n.timing.bytes, r.readF64());
    MEDUSA_ASSIGN_OR_RETURN(n.params,
                            r.readVector<ParamSpec>(readParamSpec));
    return n;
}

} // namespace

std::vector<u8>
Artifact::serialize() const
{
    BinaryWriter w;
    w.writeU32(kMagic);
    w.writeU32(kVersion);
    w.writeString(model_name);
    w.writeU64(model_seed);
    w.writeU64(free_gpu_memory);

    w.writeVector(ops, [](BinaryWriter &w2, const AllocOp &op) {
        w2.writeU8(static_cast<u8>(op.kind));
        w2.writeU64(op.logical_size);
        w2.writeU64(op.backing_size);
        w2.writeU64(op.freed_alloc_index);
    });
    w.writeU64(organic_op_count);
    w.writeU64(organic_alloc_count);

    w.writeVector(graphs, [](BinaryWriter &w2, const GraphBlueprint &g) {
        w2.writeU32(g.batch_size);
        w2.writeVector(g.nodes, writeNode);
        w2.writeVector(g.edges,
                       [](BinaryWriter &w3,
                          const std::pair<u32, u32> &e) {
                           w3.writeU32(e.first);
                           w3.writeU32(e.second);
                       });
    });
    w.writeVector(permanent,
                  [](BinaryWriter &w2, const PermanentBuffer &p) {
                      w2.writeU64(p.alloc_index);
                      w2.writeBytes(p.contents);
                  });
    w.writeVector(pointer_fixes,
                  [](BinaryWriter &w2, const PointerWordFix &f) {
                      w2.writeU64(f.buffer_alloc_index);
                      w2.writeU64(f.byte_offset);
                      w2.writeU64(f.target_alloc_index);
                      w2.writeU64(f.target_offset);
                  });
    w.writeU64(tags.size());
    for (const auto &[tag, index] : tags) {
        w.writeString(tag);
        w.writeU64(index);
    }

    w.writeU64(stats.total_nodes);
    w.writeU64(stats.total_params);
    w.writeU64(stats.pointer_params);
    w.writeU64(stats.constant_params);
    w.writeU64(stats.decoy_candidates);
    w.writeU64(stats.validation_repairs);
    w.writeU64(stats.dlsym_visible_nodes);
    w.writeU64(stats.hidden_kernel_nodes);
    w.writeU64(stats.model_param_buffers);
    w.writeU64(stats.temp_buffers);
    w.writeU64(stats.permanent_buffers);
    w.writeU64(stats.indirect_pointer_words);
    w.writeU64(stats.materialized_content_bytes);
    w.writeU64(stats.full_dump_bytes);
    return w.takeBytes();
}

StatusOr<Artifact>
Artifact::deserialize(std::vector<u8> bytes)
{
    BinaryReader r(std::move(bytes));
    Artifact a;
    MEDUSA_ASSIGN_OR_RETURN(u32 magic, r.readU32());
    if (magic != kMagic) {
        return internalError("artifact magic mismatch");
    }
    MEDUSA_ASSIGN_OR_RETURN(u32 version, r.readU32());
    if (version != kVersion) {
        return internalError("artifact version mismatch");
    }
    MEDUSA_ASSIGN_OR_RETURN(a.model_name, r.readString());
    MEDUSA_ASSIGN_OR_RETURN(a.model_seed, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.free_gpu_memory, r.readU64());

    auto read_op = [](BinaryReader &r2) -> StatusOr<AllocOp> {
        AllocOp op;
        MEDUSA_ASSIGN_OR_RETURN(u8 kind, r2.readU8());
        if (kind > AllocOp::kFree) {
            return internalError("bad AllocOp kind");
        }
        op.kind = static_cast<AllocOp::Kind>(kind);
        MEDUSA_ASSIGN_OR_RETURN(op.logical_size, r2.readU64());
        MEDUSA_ASSIGN_OR_RETURN(op.backing_size, r2.readU64());
        MEDUSA_ASSIGN_OR_RETURN(op.freed_alloc_index, r2.readU64());
        return op;
    };
    auto ops_result = r.readVector<AllocOp>(read_op);
    if (!ops_result.isOk()) {
        return ops_result.status();
    }
    a.ops = std::move(ops_result).value();
    MEDUSA_ASSIGN_OR_RETURN(a.organic_op_count, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.organic_alloc_count, r.readU64());

    using Edge = std::pair<u32, u32>;
    auto read_edge = [](BinaryReader &r3) -> StatusOr<Edge> {
        MEDUSA_ASSIGN_OR_RETURN(u32 s, r3.readU32());
        MEDUSA_ASSIGN_OR_RETURN(u32 d, r3.readU32());
        return Edge{s, d};
    };
    auto read_graph = [&read_edge](BinaryReader &r2)
        -> StatusOr<GraphBlueprint> {
        GraphBlueprint g;
        MEDUSA_ASSIGN_OR_RETURN(g.batch_size, r2.readU32());
        auto nodes = r2.readVector<NodeBlueprint>(readNode);
        if (!nodes.isOk()) {
            return nodes.status();
        }
        g.nodes = std::move(nodes).value();
        auto edges = r2.readVector<Edge>(read_edge);
        if (!edges.isOk()) {
            return edges.status();
        }
        g.edges = std::move(edges).value();
        return g;
    };
    auto graphs_result = r.readVector<GraphBlueprint>(read_graph);
    if (!graphs_result.isOk()) {
        return graphs_result.status();
    }
    a.graphs = std::move(graphs_result).value();

    auto read_perm = [](BinaryReader &r2) -> StatusOr<PermanentBuffer> {
        PermanentBuffer p;
        MEDUSA_ASSIGN_OR_RETURN(p.alloc_index, r2.readU64());
        MEDUSA_ASSIGN_OR_RETURN(p.contents, r2.readBytes());
        return p;
    };
    auto perm_result = r.readVector<PermanentBuffer>(read_perm);
    if (!perm_result.isOk()) {
        return perm_result.status();
    }
    a.permanent = std::move(perm_result).value();

    auto read_fix = [](BinaryReader &r2) -> StatusOr<PointerWordFix> {
        PointerWordFix f;
        MEDUSA_ASSIGN_OR_RETURN(f.buffer_alloc_index, r2.readU64());
        MEDUSA_ASSIGN_OR_RETURN(f.byte_offset, r2.readU64());
        MEDUSA_ASSIGN_OR_RETURN(f.target_alloc_index, r2.readU64());
        MEDUSA_ASSIGN_OR_RETURN(f.target_offset, r2.readU64());
        return f;
    };
    auto fixes_result = r.readVector<PointerWordFix>(read_fix);
    if (!fixes_result.isOk()) {
        return fixes_result.status();
    }
    a.pointer_fixes = std::move(fixes_result).value();
    MEDUSA_ASSIGN_OR_RETURN(u64 tag_count, r.readU64());
    for (u64 i = 0; i < tag_count; ++i) {
        MEDUSA_ASSIGN_OR_RETURN(std::string tag, r.readString());
        MEDUSA_ASSIGN_OR_RETURN(u64 index, r.readU64());
        a.tags[tag] = index;
    }

    MEDUSA_ASSIGN_OR_RETURN(a.stats.total_nodes, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.stats.total_params, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.stats.pointer_params, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.stats.constant_params, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.stats.decoy_candidates, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.stats.validation_repairs, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.stats.dlsym_visible_nodes, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.stats.hidden_kernel_nodes, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.stats.model_param_buffers, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.stats.temp_buffers, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.stats.permanent_buffers, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.stats.indirect_pointer_words, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.stats.materialized_content_bytes,
                            r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.stats.full_dump_bytes, r.readU64());
    return a;
}

u64
Artifact::totalNodes() const
{
    u64 total = 0;
    for (const auto &g : graphs) {
        total += g.nodes.size();
    }
    return total;
}

} // namespace medusa::core
