#include "medusa/artifact.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace medusa::core {

namespace {

// Section ids of the sectioned format (kVersion). Readers ignore ids
// they do not know, so the format can grow without breaking old
// binaries.
enum SectionId : u32 {
    kSecMeta = 1,
    kSecOps = 2,
    kSecGraphs = 3,
    kSecPermanent = 4,
    kSecPointerFixes = 5,
    kSecTags = 6,
    kSecStats = 7,
};

/** One section-table entry: 24 bytes on the wire. */
struct SectionEntry
{
    u32 id = 0;
    u32 crc = 0;
    u64 offset = 0; // absolute, from the start of the stream
    u64 size = 0;
};

constexpr std::size_t kSectionEntryBytes = 24;
/** 24 bytes of per-graph sub-index: batch_size, crc, offset, size. */
constexpr std::size_t kGraphEntryBytes = 24;

/** Leading u64 of a buffer, or 0 when it is too short. */
u64
peekU64(std::span<const u8> b)
{
    u64 v = 0;
    if (b.size() >= sizeof(v)) {
        std::memcpy(&v, b.data(), sizeof(v));
    }
    return v;
}

void
writeParamSpec(BinaryWriter &w, const ParamSpec &p)
{
    w.writeU8(static_cast<u8>(p.kind));
    if (p.kind == ParamSpec::kConstant) {
        w.writeBytes(p.constant_bytes);
    } else {
        w.writeU64(p.alloc_index);
        w.writeU64(p.offset);
    }
}

StatusOr<ParamSpec>
readParamSpec(BinaryReader &r)
{
    ParamSpec p;
    MEDUSA_ASSIGN_OR_RETURN(u8 kind, r.readU8());
    if (kind > ParamSpec::kIndirect) {
        return internalError("bad ParamSpec kind");
    }
    p.kind = static_cast<ParamSpec::Kind>(kind);
    if (p.kind == ParamSpec::kConstant) {
        MEDUSA_ASSIGN_OR_RETURN(p.constant_bytes, r.readBytes());
    } else {
        MEDUSA_ASSIGN_OR_RETURN(p.alloc_index, r.readU64());
        MEDUSA_ASSIGN_OR_RETURN(p.offset, r.readU64());
    }
    return p;
}

void
writeNode(BinaryWriter &w, const NodeBlueprint &n)
{
    w.writeString(n.kernel_name);
    w.writeString(n.module_name);
    w.writeF64(n.timing.flops);
    w.writeF64(n.timing.bytes);
    w.writeVector(n.params, writeParamSpec);
}

StatusOr<NodeBlueprint>
readNode(BinaryReader &r)
{
    NodeBlueprint n;
    MEDUSA_ASSIGN_OR_RETURN(n.kernel_name, r.readString());
    MEDUSA_ASSIGN_OR_RETURN(n.module_name, r.readString());
    MEDUSA_ASSIGN_OR_RETURN(n.timing.flops, r.readF64());
    MEDUSA_ASSIGN_OR_RETURN(n.timing.bytes, r.readF64());
    MEDUSA_ASSIGN_OR_RETURN(n.params,
                            r.readVector<ParamSpec>(readParamSpec));
    return n;
}

void
writeAllocOp(BinaryWriter &w, const AllocOp &op)
{
    w.writeU8(static_cast<u8>(op.kind));
    w.writeU64(op.logical_size);
    w.writeU64(op.backing_size);
    w.writeU64(op.freed_alloc_index);
}

StatusOr<AllocOp>
readAllocOp(BinaryReader &r)
{
    AllocOp op;
    MEDUSA_ASSIGN_OR_RETURN(u8 kind, r.readU8());
    if (kind > AllocOp::kFree) {
        return internalError("bad AllocOp kind");
    }
    op.kind = static_cast<AllocOp::Kind>(kind);
    MEDUSA_ASSIGN_OR_RETURN(op.logical_size, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(op.backing_size, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(op.freed_alloc_index, r.readU64());
    return op;
}

using Edge = std::pair<u32, u32>;

StatusOr<Edge>
readEdge(BinaryReader &r)
{
    MEDUSA_ASSIGN_OR_RETURN(u32 s, r.readU32());
    MEDUSA_ASSIGN_OR_RETURN(u32 d, r.readU32());
    return Edge{s, d};
}

/** Graph payload: batch_size + nodes + edges (no surrounding index). */
void
writeGraphPayload(BinaryWriter &w, const GraphBlueprint &g)
{
    w.writeU32(g.batch_size);
    w.writeVector(g.nodes, writeNode);
    w.writeVector(g.edges, [](BinaryWriter &w2, const Edge &e) {
        w2.writeU32(e.first);
        w2.writeU32(e.second);
    });
}

StatusOr<GraphBlueprint>
readGraphPayload(BinaryReader &r)
{
    GraphBlueprint g;
    MEDUSA_ASSIGN_OR_RETURN(g.batch_size, r.readU32());
    auto nodes = r.readVector<NodeBlueprint>(readNode);
    if (!nodes.isOk()) {
        return nodes.status();
    }
    g.nodes = std::move(nodes).value();
    auto edges = r.readVector<Edge>(readEdge);
    if (!edges.isOk()) {
        return edges.status();
    }
    g.edges = std::move(edges).value();
    return g;
}

void
writePermanent(BinaryWriter &w, const PermanentBuffer &p)
{
    w.writeU64(p.alloc_index);
    w.writeBytes(p.contents);
}

StatusOr<PermanentBuffer>
readPermanent(BinaryReader &r)
{
    PermanentBuffer p;
    MEDUSA_ASSIGN_OR_RETURN(p.alloc_index, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(p.contents, r.readBytes());
    return p;
}

void
writePointerFix(BinaryWriter &w, const PointerWordFix &f)
{
    w.writeU64(f.buffer_alloc_index);
    w.writeU64(f.byte_offset);
    w.writeU64(f.target_alloc_index);
    w.writeU64(f.target_offset);
}

StatusOr<PointerWordFix>
readPointerFix(BinaryReader &r)
{
    PointerWordFix f;
    MEDUSA_ASSIGN_OR_RETURN(f.buffer_alloc_index, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(f.byte_offset, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(f.target_alloc_index, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(f.target_offset, r.readU64());
    return f;
}

void
writeStats(BinaryWriter &w, const AnalysisStats &s)
{
    w.writeU64(s.total_nodes);
    w.writeU64(s.total_params);
    w.writeU64(s.pointer_params);
    w.writeU64(s.constant_params);
    w.writeU64(s.decoy_candidates);
    w.writeU64(s.validation_repairs);
    w.writeU64(s.dlsym_visible_nodes);
    w.writeU64(s.hidden_kernel_nodes);
    w.writeU64(s.model_param_buffers);
    w.writeU64(s.temp_buffers);
    w.writeU64(s.permanent_buffers);
    w.writeU64(s.indirect_pointer_words);
    w.writeU64(s.materialized_content_bytes);
    w.writeU64(s.full_dump_bytes);
}

Status
readStats(BinaryReader &r, AnalysisStats &s)
{
    MEDUSA_ASSIGN_OR_RETURN(s.total_nodes, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(s.total_params, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(s.pointer_params, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(s.constant_params, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(s.decoy_candidates, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(s.validation_repairs, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(s.dlsym_visible_nodes, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(s.hidden_kernel_nodes, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(s.model_param_buffers, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(s.temp_buffers, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(s.permanent_buffers, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(s.indirect_pointer_words, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(s.materialized_content_bytes, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(s.full_dump_bytes, r.readU64());
    return Status::ok();
}

void
writeTags(BinaryWriter &w, const std::map<std::string, u64> &tags)
{
    w.writeU64(tags.size());
    for (const auto &[tag, index] : tags) {
        w.writeString(tag);
        w.writeU64(index);
    }
}

Status
readTags(BinaryReader &r, std::map<std::string, u64> &tags)
{
    MEDUSA_ASSIGN_OR_RETURN(u64 tag_count, r.readU64());
    for (u64 i = 0; i < tag_count; ++i) {
        MEDUSA_ASSIGN_OR_RETURN(std::string tag, r.readString());
        MEDUSA_ASSIGN_OR_RETURN(u64 index, r.readU64());
        tags[tag] = index;
    }
    return Status::ok();
}

/** The flat (kLegacyVersion) body, after magic + version. */
Status
readFlatBody(BinaryReader &r, Artifact &a)
{
    MEDUSA_ASSIGN_OR_RETURN(a.model_name, r.readString());
    MEDUSA_ASSIGN_OR_RETURN(a.model_seed, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.free_gpu_memory, r.readU64());

    auto ops_result = r.readVector<AllocOp>(readAllocOp);
    if (!ops_result.isOk()) {
        return ops_result.status();
    }
    a.ops = std::move(ops_result).value();
    MEDUSA_ASSIGN_OR_RETURN(a.organic_op_count, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(a.organic_alloc_count, r.readU64());

    auto graphs_result = r.readVector<GraphBlueprint>(
        [](BinaryReader &r2) { return readGraphPayload(r2); });
    if (!graphs_result.isOk()) {
        return graphs_result.status();
    }
    a.graphs = std::move(graphs_result).value();

    auto perm_result = r.readVector<PermanentBuffer>(readPermanent);
    if (!perm_result.isOk()) {
        return perm_result.status();
    }
    a.permanent = std::move(perm_result).value();

    auto fixes_result = r.readVector<PointerWordFix>(readPointerFix);
    if (!fixes_result.isOk()) {
        return fixes_result.status();
    }
    a.pointer_fixes = std::move(fixes_result).value();
    MEDUSA_RETURN_IF_ERROR(readTags(r, a.tags));
    return readStats(r, a.stats);
}

/** Decode the sectioned graphs payload, optionally in parallel. */
Status
readGraphsSection(std::span<const u8> payload,
                  const ArtifactReadOptions &options,
                  std::vector<GraphBlueprint> &out)
{
    BinaryReader index(payload);
    MEDUSA_ASSIGN_OR_RETURN(u64 count, index.readU64());
    if (count > index.remaining() / kGraphEntryBytes) {
        return internalError("graph sub-index count exceeds data");
    }
    struct GraphEntry
    {
        u32 crc = 0;
        u64 offset = 0; // relative to the section payload
        u64 size = 0;
    };
    std::vector<GraphEntry> entries(count);
    for (GraphEntry &e : entries) {
        MEDUSA_ASSIGN_OR_RETURN(u32 batch_size, index.readU32());
        (void)batch_size; // advisory copy; the payload's value is used
        MEDUSA_ASSIGN_OR_RETURN(e.crc, index.readU32());
        MEDUSA_ASSIGN_OR_RETURN(e.offset, index.readU64());
        MEDUSA_ASSIGN_OR_RETURN(e.size, index.readU64());
        if (e.offset > payload.size() ||
            e.size > payload.size() - e.offset) {
            return internalError("graph section offset out of bounds");
        }
    }

    // Each slot is written by exactly one task; the clock, the report
    // and every other piece of shared state stay untouched, so the
    // result is bit-identical for any thread count.
    out.assign(count, GraphBlueprint{});
    std::vector<Status> statuses(count);
    auto decodeOne = [&](std::size_t i) {
        const GraphEntry &e = entries[i];
        const std::span<const u8> bytes =
            payload.subspan(e.offset, e.size);
        if (options.fault != nullptr) {
            const Status injected = options.fault->check(
                FaultPoint::kArtifactCrc,
                "graph section " + std::to_string(i));
            if (!injected.isOk()) {
                statuses[i] = injected;
                return;
            }
        }
        if (options.verify_crc &&
            crc32(bytes.data(), bytes.size()) != e.crc) {
            statuses[i] = internalError(
                "graph section " + std::to_string(i) +
                " failed its CRC32 check");
            return;
        }
        BinaryReader gr(bytes);
        auto graph = readGraphPayload(gr);
        if (!graph.isOk()) {
            statuses[i] = graph.status();
            return;
        }
        out[i] = std::move(graph).value();
    };

    ThreadPool *pool = options.pool;
    std::unique_ptr<ThreadPool> local_pool;
    if (pool == nullptr && options.threads > 1 && count > 1) {
        local_pool = std::make_unique<ThreadPool>(options.threads - 1);
        pool = local_pool.get();
    }
    if (pool != nullptr && count > 1) {
        pool->parallelFor(count, decodeOne);
    } else {
        for (std::size_t i = 0; i < count; ++i) {
            decodeOne(i);
        }
    }
    for (const Status &s : statuses) {
        MEDUSA_RETURN_IF_ERROR(s);
    }
    return Status::ok();
}

} // namespace

std::vector<u8>
Artifact::serialize() const
{
    // Build every section payload, then assemble header + table +
    // payloads. The graphs section leads with a per-graph sub-index
    // (batch_size, crc, offset, size) so readers can decode blueprints
    // independently — the enabler for parallel deserialization. Its
    // section-table CRC covers only that sub-index; the per-graph CRCs
    // cover the blueprint payloads.
    BinaryWriter meta;
    meta.writeString(model_name);
    meta.writeU64(model_seed);
    meta.writeU64(free_gpu_memory);
    meta.writeU64(organic_op_count);
    meta.writeU64(organic_alloc_count);

    BinaryWriter ops_w;
    ops_w.writeVector(ops, writeAllocOp);

    std::vector<std::vector<u8>> graph_payloads;
    graph_payloads.reserve(graphs.size());
    for (const GraphBlueprint &g : graphs) {
        BinaryWriter gw;
        writeGraphPayload(gw, g);
        graph_payloads.push_back(gw.takeBytes());
    }
    BinaryWriter graphs_w;
    graphs_w.writeU64(graphs.size());
    u64 rel = 8 + graphs.size() * kGraphEntryBytes;
    for (std::size_t i = 0; i < graphs.size(); ++i) {
        graphs_w.writeU32(graphs[i].batch_size);
        graphs_w.writeU32(crc32(graph_payloads[i].data(),
                                graph_payloads[i].size()));
        graphs_w.writeU64(rel);
        graphs_w.writeU64(graph_payloads[i].size());
        rel += graph_payloads[i].size();
    }
    const std::size_t graphs_index_size = graphs_w.size();
    for (const std::vector<u8> &p : graph_payloads) {
        graphs_w.writeBytesRaw(p.data(), p.size());
    }

    BinaryWriter perm_w;
    perm_w.writeVector(permanent, writePermanent);
    BinaryWriter fixes_w;
    fixes_w.writeVector(pointer_fixes, writePointerFix);
    BinaryWriter tags_w;
    writeTags(tags_w, tags);
    BinaryWriter stats_w;
    writeStats(stats_w, stats);

    struct Pending
    {
        u32 id;
        const BinaryWriter *payload;
        std::size_t crc_bytes; // prefix covered by the table CRC
    };
    const Pending sections[] = {
        {kSecMeta, &meta, meta.size()},
        {kSecOps, &ops_w, ops_w.size()},
        {kSecGraphs, &graphs_w, graphs_index_size},
        {kSecPermanent, &perm_w, perm_w.size()},
        {kSecPointerFixes, &fixes_w, fixes_w.size()},
        {kSecTags, &tags_w, tags_w.size()},
        {kSecStats, &stats_w, stats_w.size()},
    };

    BinaryWriter out;
    out.writeU32(kMagic);
    out.writeU32(kVersion);
    out.writeU32(static_cast<u32>(std::size(sections)));
    u64 offset = 12 + std::size(sections) * kSectionEntryBytes;
    for (const Pending &s : sections) {
        out.writeU32(s.id);
        out.writeU32(crc32(s.payload->bytes().data(), s.crc_bytes));
        out.writeU64(offset);
        out.writeU64(s.payload->size());
        offset += s.payload->size();
    }
    for (const Pending &s : sections) {
        out.writeBytesRaw(s.payload->bytes().data(), s.payload->size());
    }
    return out.takeBytes();
}

std::vector<u8>
Artifact::serializeFlat() const
{
    BinaryWriter w;
    w.writeU32(kMagic);
    w.writeU32(kLegacyVersion);
    w.writeString(model_name);
    w.writeU64(model_seed);
    w.writeU64(free_gpu_memory);
    w.writeVector(ops, writeAllocOp);
    w.writeU64(organic_op_count);
    w.writeU64(organic_alloc_count);
    w.writeVector(graphs, [](BinaryWriter &w2, const GraphBlueprint &g) {
        writeGraphPayload(w2, g);
    });
    w.writeVector(permanent, writePermanent);
    w.writeVector(pointer_fixes, writePointerFix);
    writeTags(w, tags);
    writeStats(w, stats);
    return w.takeBytes();
}

StatusOr<Artifact>
Artifact::deserialize(std::vector<u8> bytes)
{
    // The view path copies all decoded data out of the buffer, so the
    // local vector's lifetime is sufficient.
    return deserializeView(std::span<const u8>(bytes));
}

StatusOr<Artifact>
Artifact::deserializeView(std::span<const u8> bytes,
                          const ArtifactReadOptions &options)
{
    BinaryReader r(bytes);
    Artifact a;
    Span span(options.trace, "artifact.deserialize", "artifact");
    span.arg("bytes", std::to_string(bytes.size()));
    MEDUSA_FAULT_POINT(options.fault, FaultPoint::kArtifactDeserialize,
                       "deserializeView of " +
                           std::to_string(bytes.size()) + " bytes");
    MEDUSA_ASSIGN_OR_RETURN(u32 magic, r.readU32());
    if (magic != kMagic) {
        return internalError("artifact magic mismatch");
    }
    MEDUSA_ASSIGN_OR_RETURN(u32 version, r.readU32());
    if (version == kLegacyVersion) {
        MEDUSA_RETURN_IF_ERROR(readFlatBody(r, a));
        a.serialized_size_hint = bytes.size();
        return a;
    }
    if (version != kVersion) {
        return internalError("artifact version mismatch");
    }

    MEDUSA_ASSIGN_OR_RETURN(u32 section_count, r.readU32());
    std::vector<SectionEntry> table(section_count);
    for (SectionEntry &e : table) {
        MEDUSA_ASSIGN_OR_RETURN(e.id, r.readU32());
        MEDUSA_ASSIGN_OR_RETURN(e.crc, r.readU32());
        MEDUSA_ASSIGN_OR_RETURN(e.offset, r.readU64());
        MEDUSA_ASSIGN_OR_RETURN(e.size, r.readU64());
        // Every entry must lie inside the stream, even sections this
        // reader skips or does not know: truncation anywhere fails.
        if (e.offset > bytes.size() ||
            e.size > bytes.size() - e.offset) {
            return internalError("artifact section out of bounds");
        }
    }

    auto findSection = [&table](u32 id) -> const SectionEntry * {
        for (const SectionEntry &e : table) {
            if (e.id == id) {
                return &e;
            }
        }
        return nullptr;
    };
    auto sectionPayload =
        [&](const SectionEntry &e,
            std::size_t crc_prefix) -> StatusOr<std::span<const u8>> {
        const std::span<const u8> payload =
            bytes.subspan(e.offset, e.size);
        MEDUSA_FAULT_POINT(options.fault, FaultPoint::kArtifactCrc,
                           "section " + std::to_string(e.id));
        const std::size_t covered = std::min(crc_prefix, payload.size());
        if (options.verify_crc &&
            crc32(payload.data(), covered) != e.crc) {
            return internalError("artifact section " +
                                 std::to_string(e.id) +
                                 " failed its CRC32 check");
        }
        return payload;
    };
    auto requireSection = [&](u32 id) -> StatusOr<std::span<const u8>> {
        const SectionEntry *e = findSection(id);
        if (e == nullptr) {
            return internalError("artifact missing section " +
                                 std::to_string(id));
        }
        return sectionPayload(*e, e->size);
    };

    {
        MEDUSA_ASSIGN_OR_RETURN(auto payload, requireSection(kSecMeta));
        BinaryReader mr(payload);
        MEDUSA_ASSIGN_OR_RETURN(a.model_name, mr.readString());
        MEDUSA_ASSIGN_OR_RETURN(a.model_seed, mr.readU64());
        MEDUSA_ASSIGN_OR_RETURN(a.free_gpu_memory, mr.readU64());
        MEDUSA_ASSIGN_OR_RETURN(a.organic_op_count, mr.readU64());
        MEDUSA_ASSIGN_OR_RETURN(a.organic_alloc_count, mr.readU64());
    }
    {
        MEDUSA_ASSIGN_OR_RETURN(auto payload, requireSection(kSecOps));
        BinaryReader or_(payload);
        auto ops_result = or_.readVector<AllocOp>(readAllocOp);
        if (!ops_result.isOk()) {
            return ops_result.status();
        }
        a.ops = std::move(ops_result).value();
    }
    {
        const SectionEntry *e = findSection(kSecGraphs);
        if (e == nullptr) {
            return internalError("artifact missing graphs section");
        }
        // The table CRC covers the sub-index; per-graph CRCs cover the
        // payloads (verified inside readGraphsSection, in parallel).
        const std::span<const u8> raw = bytes.subspan(e->offset, e->size);
        const u64 count = peekU64(raw);
        std::size_t index_bytes = raw.size();
        if (raw.size() >= 8 &&
            count <= (raw.size() - 8) / kGraphEntryBytes) {
            index_bytes = 8 + static_cast<std::size_t>(count) *
                                  kGraphEntryBytes;
        }
        MEDUSA_ASSIGN_OR_RETURN(auto payload,
                                sectionPayload(*e, index_bytes));
        MEDUSA_RETURN_IF_ERROR(
            readGraphsSection(payload, options, a.graphs));
    }
    if (options.load_permanent_contents) {
        MEDUSA_ASSIGN_OR_RETURN(auto payload,
                                requireSection(kSecPermanent));
        BinaryReader pr(payload);
        auto perm_result = pr.readVector<PermanentBuffer>(readPermanent);
        if (!perm_result.isOk()) {
            return perm_result.status();
        }
        a.permanent = std::move(perm_result).value();

        MEDUSA_ASSIGN_OR_RETURN(auto fix_payload,
                                requireSection(kSecPointerFixes));
        BinaryReader fr(fix_payload);
        auto fixes_result = fr.readVector<PointerWordFix>(readPointerFix);
        if (!fixes_result.isOk()) {
            return fixes_result.status();
        }
        a.pointer_fixes = std::move(fixes_result).value();
    } else {
        a.contents_skipped = true;
    }
    {
        MEDUSA_ASSIGN_OR_RETURN(auto payload, requireSection(kSecTags));
        BinaryReader tr(payload);
        MEDUSA_RETURN_IF_ERROR(readTags(tr, a.tags));
    }
    {
        MEDUSA_ASSIGN_OR_RETURN(auto payload, requireSection(kSecStats));
        BinaryReader sr(payload);
        MEDUSA_RETURN_IF_ERROR(readStats(sr, a.stats));
    }
    a.serialized_size_hint = bytes.size();
    return a;
}

u64
Artifact::serializedByteSize() const
{
    if (serialized_size_hint != 0) {
        return serialized_size_hint;
    }
    return serialize().size();
}

u64
Artifact::totalNodes() const
{
    u64 total = 0;
    for (const auto &g : graphs) {
        total += g.nodes.size();
    }
    return total;
}

void
AnalysisStats::publishTo(MetricsRegistry &registry) const
{
    registry.counter("analysis.total_nodes").add(total_nodes);
    registry.counter("analysis.total_params").add(total_params);
    registry.counter("analysis.pointer_params").add(pointer_params);
    registry.counter("analysis.constant_params").add(constant_params);
    registry.counter("analysis.decoy_candidates").add(decoy_candidates);
    registry.counter("analysis.validation_repairs").add(validation_repairs);
    registry.counter("analysis.dlsym_visible_nodes")
        .add(dlsym_visible_nodes);
    registry.counter("analysis.hidden_kernel_nodes")
        .add(hidden_kernel_nodes);
    registry.counter("analysis.model_param_buffers")
        .add(model_param_buffers);
    registry.counter("analysis.temp_buffers").add(temp_buffers);
    registry.counter("analysis.permanent_buffers").add(permanent_buffers);
    registry.counter("analysis.indirect_pointer_words")
        .add(indirect_pointer_words);
    registry.counter("analysis.materialized_content_bytes")
        .add(materialized_content_bytes);
    registry.counter("analysis.full_dump_bytes").add(full_dump_bytes);
}

} // namespace medusa::core
