/**
 * @file
 * The offline analysis stage (paper §3/§4): synthesizes the recorder's
 * output into a materialized Artifact.
 *
 * Pointer-vs-constant classification: 8-byte parameters whose value
 * falls in the device address range are pointer *candidates* (the
 * paper's "high address prefix" heuristic). Candidates are resolved by
 * trace-based backward matching against the allocation sequence
 * (§4.1): the latest allocation containing the value that is still
 * live at the launch's trace position wins. Candidates that match no
 * allocation are demoted to constants (rare false positives; validated
 * later). A naive matching mode (first containing allocation, ignoring
 * liveness) is provided as the ablation that reproduces Figure 6's
 * data-corruption hazard.
 */

#ifndef MEDUSA_MEDUSA_ANALYZE_H
#define MEDUSA_MEDUSA_ANALYZE_H

#include <string>
#include <vector>

#include "medusa/record.h"
#include "simcuda/gpu_process.h"
#include "simcuda/graph.h"

namespace medusa::core {

/** Analysis configuration (ablation switches of DESIGN.md §7). */
struct AnalyzeOptions
{
    /**
     * true: backward trace-based matching (the paper's §4.1).
     * false: naive earliest-containing-allocation matching (the Figure
     * 6 false-positive ablation).
     */
    bool trace_based_matching = true;
    /**
     * true: materialize only permanent-buffer contents (§4.3).
     * false: dump the contents of every node-referenced live buffer.
     */
    bool copy_free_contents = true;
    /**
     * §8 extension: scan materialized buffer contents for device
     * pointers (e.g. batched-GEMM operand arrays) and record them as
     * PointerWordFixes so the online phase rewrites them after replay.
     * Off = base-paper behaviour: such contents are copied verbatim and
     * dereference stale addresses (caught by validation).
     */
    bool handle_indirect_pointers = true;
};

/** Identifies one parameter of one node of one graph. */
struct ParamRef
{
    u32 batch_size = 0;
    u32 node = 0;
    u32 param = 0;
};

/** The analysis output: the artifact plus repair metadata. */
struct AnalysisResult
{
    Artifact artifact;
    /**
     * Pointer-classified params whose match was ambiguous (multiple
     * same-address allocations in the trace window) — the candidates
     * the validation/repair loop flips first on mismatch.
     */
    std::vector<ParamRef> risky_params;
};

/**
 * Run the analysis over one recorded capturing-stage cold start.
 *
 * @param recorder the offline recorder (alloc/launch traces, tags).
 * @param process the offline process (for name/module lookups and for
 *        reading permanent-buffer contents off the device).
 * @param model_name / @param model_seed artifact identity.
 * @param graphs the captured graphs, one per batch size.
 * @param free_gpu_memory the profiled KV-init value to materialize.
 */
StatusOr<AnalysisResult>
analyze(const Recorder &recorder, simcuda::GpuProcess &process,
        const std::string &model_name, u64 model_seed,
        const std::vector<std::pair<u32, simcuda::CudaGraph>> &graphs,
        u64 free_gpu_memory, const AnalyzeOptions &options);

/** Whether an 8-byte value looks like a device pointer (heuristic). */
bool looksLikeDevicePointer(u64 value);

} // namespace medusa::core

#endif // MEDUSA_MEDUSA_ANALYZE_H
