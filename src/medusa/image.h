/**
 * @file
 * The v6 materialized image: a memory-mappable, relocation-patchable
 * flattening of the v5 artifact (ROADMAP item 4; DESIGN.md §13).
 *
 * The v5 artifact stores graph *blueprints* — per-node kernel names and
 * per-param indirect (alloc_index, offset) pairs — which the online
 * phase turns back into executable graphs by rebuilding a CudaGraph
 * object per blueprint and re-resolving every node's kernel. That
 * rebuild dominates restore wall time. The v6 image moves that work
 * offline, the way a dynamic linker moves symbol binding into a
 * precomputed relocation table:
 *
 *  - graph topology, execution order, timings and param widths are
 *    stored as structure-of-arrays POD sections that the reader *views*
 *    in place (zero-copy spans over the file bytes);
 *  - every kernel/param cell that needs a run-specific address is a u64
 *    slot in a "patch template", with constants prefilled offline;
 *  - a relocation table lists (slot, index, addend) records: data
 *    relocations resolve against the replayed allocation table, kernel
 *    relocations against the first-occurrence kernel name table.
 *
 * Restore then copies the template, applies the relocations in one
 * linear pass, and instantiates executable graphs directly from the
 * patched arrays (GpuProcess::instantiatePatched) — no CudaGraph
 * reconstruction, no per-node name lookups. The kernel name table is
 * emitted in first-occurrence order (graph order, then node order) so
 * resolving it loads modules in exactly the order the rebuild path
 * would, keeping ASLR draws — and therefore restore fingerprints —
 * bit-identical across the two paths.
 *
 * The image also embeds the tokenizer's learned merge list so the
 * online phase can rebuild the tokenizer without re-training over the
 * corpus (llm::BpeTokenizer::fromMerges).
 */

#ifndef MEDUSA_MEDUSA_IMAGE_H
#define MEDUSA_MEDUSA_IMAGE_H

#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/trace.h"
#include "common/types.h"
#include "medusa/artifact.h"
#include "simcuda/graph.h"

namespace medusa::core {

class Recorder; // record.h; only needed by the emission lint gate

/** Options for opening a serialized image. */
struct ImageReadOptions
{
    /** Verify the whole-image CRC32 (covers everything after header). */
    bool verify_crc = true;
    /**
     * Reject out-of-bounds relocation records at open time (the patch
     * pass indexes them unchecked). medusa-lint opens with this off so
     * a corrupt relocation table decodes far enough to be diagnosed
     * precisely (MDL701/MDL703) instead of as a generic open failure.
     */
    bool validate_relocations = true;
    /**
     * openFile(): map the file read-only instead of reading it into
     * memory. Falls back to the read path when mapping fails.
     */
    bool use_mmap = true;
    /** Inject FaultPoint::kImageOpen before decoding, when set. */
    FaultInjector *fault = nullptr;
    TraceRecorder *trace = nullptr;
};

/**
 * A decoded view over a serialized v6 image. Small metadata (counts,
 * names, tags, the alloc-op sequence, tokenizer merges) is copied out;
 * the large arrays — graph SoA columns, the patch template and the
 * relocation tables — are zero-copy spans into the backing bytes. The
 * backing is either owned by the image (open) or by the caller
 * (openView), in which case it must outlive the image.
 */
class MaterializedImage
{
  public:
    static constexpr u32 kMagic = 0x4d445349; // "MDSI"
    static constexpr u32 kVersion = 6;
    /** magic + version + payload size + payload crc + pad. */
    static constexpr std::size_t kHeaderBytes = 24;

    /** One kernel-name-table entry, in first-occurrence order. */
    struct KernelEntry
    {
        std::string name;
        std::string module;
    };

    /**
     * One data relocation: write the replayed device address of
     * allocation @c alloc_index plus @c addend into template slot
     * @c slot. POD; stored as a packed on-disk array.
     */
    struct DataReloc
    {
        u64 slot = 0;
        u64 alloc_index = 0;
        u64 addend = 0;
    };

    /**
     * One kernel relocation: write the resolved address of kernel-table
     * entry @c kernel_index into template slot @c slot.
     */
    struct KernelReloc
    {
        u64 slot = 0;
        u64 kernel_index = 0;
    };

    /** Zero-copy view of one graph's SoA columns. */
    struct GraphView
    {
        u32 batch_size = 0;
        u32 node_count = 0;
        /** Per-node param-blob prefix (node_count + 1 entries). */
        std::span<const u32> param_begin;
        /** Per-param byte widths. */
        std::span<const u8> param_len;
        /** Per-node kernel timings. */
        std::span<const TimingInfo> timings;
        /** Dependency edges. */
        std::span<const simcuda::GraphEdge> edges;
        /** Precomputed topological execution order. */
        std::span<const u32> order;
        /** First template slot of this graph's node fn addresses. */
        u64 fn_slot_begin = 0;
        /** First template slot of this graph's param values. */
        u64 param_slot_begin = 0;
    };

    /** Zero-copy view of one permanent buffer's materialized bytes. */
    struct PermanentView
    {
        u64 alloc_index = 0;
        std::span<const u8> contents;
    };

    // ---- metadata (decoded copies) ------------------------------------
    std::string model_name;
    u64 model_seed = 0;
    u64 free_gpu_memory = 0;
    u64 organic_op_count = 0;
    u64 organic_alloc_count = 0;
    u64 total_nodes = 0;
    std::vector<AllocOp> ops;
    std::map<std::string, u64> tags;
    std::vector<KernelEntry> kernel_table;
    std::vector<std::pair<i32, i32>> tokenizer_merges;
    std::vector<GraphView> graphs;
    std::vector<PermanentView> permanent;

    // ---- large arrays (zero-copy views) -------------------------------
    /** All template slots: per graph, [node fn slots][param slots]. */
    std::span<const u64> patch_template;
    std::span<const DataReloc> data_relocs;
    std::span<const KernelReloc> kernel_relocs;
    std::span<const PointerWordFix> pointer_fixes;

    /** Size of the serialized image (for read-bandwidth charging). */
    u64 serialized_size = 0;
    /**
     * Bytes of the payload the decoder actually consumed. Trailing
     * payload bytes beyond this are CRC-covered but semantically dead —
     * medusa-lint flags the gap (MDL708).
     */
    u64 payload_decoded_bytes = 0;

    /**
     * Open an image over caller-owned bytes (zero-copy; the caller
     * keeps @p bytes alive and 8-byte aligned for the image's
     * lifetime). Injects FaultPoint::kImageOpen when options.fault is
     * set; verifies the whole-image CRC unless disabled.
     */
    static StatusOr<MaterializedImage>
    openView(std::span<const u8> bytes, const ImageReadOptions &options = {});

    /** Open an image adopting @p bytes (kept alive inside the image). */
    static StatusOr<MaterializedImage>
    open(std::vector<u8> bytes, const ImageReadOptions &options = {});

    /**
     * Open an image file. With options.use_mmap (the default) the file
     * is mapped read-only and the image views the mapping in place — the
     * kernel pages graph columns in on first touch, which is what makes
     * a multi-model image cache cheap to hold open. Falls back to the
     * read-based path (open) when mapping is unavailable.
     */
    static StatusOr<MaterializedImage>
    openFile(const std::string &path, const ImageReadOptions &options = {});

    /** True when the backing bytes are a live file mapping. */
    bool isMapped() const { return mapping_ != nullptr; }

    // Spans point into owned_; copying would leave them dangling, and
    // moving a vector keeps its heap buffer stable, so moves are safe.
    MaterializedImage() = default;
    MaterializedImage(const MaterializedImage &) = delete;
    MaterializedImage &operator=(const MaterializedImage &) = delete;
    MaterializedImage(MaterializedImage &&) = default;
    MaterializedImage &operator=(MaterializedImage &&) = default;

  private:
    /** Backing bytes when opened via open(); empty for openView(). */
    std::vector<u8> owned_;
    /** Backing mapping when opened via openFile() with mmap. */
    std::shared_ptr<const void> mapping_;
};

/** Options for the offline image emission. */
struct ImageBuildOptions
{
    /**
     * Post-emission verification gate: decode the freshly emitted bytes
     * and run the MDL7xx/MDL8xx image rules over them; emission fails
     * on any error-severity finding. This is the producer-side twin of
     * the pre-restore gate — a defect is cheapest to reject before the
     * image is ever shipped.
     */
    bool lint = false;
    /** Raw offline trace, forwarded to the lint gate when set. */
    const Recorder *trace = nullptr;
};

/**
 * Flatten a v5/v4 artifact into the serialized v6 image — the offline
 * emission step, doubling as the v5→v6 migration path. Precomputes
 * each graph's topological order, builds the first-occurrence kernel
 * name table, prefills constant params into the patch template and
 * emits the relocation table. @p tokenizer_merges is the learned merge
 * list of the model's tokenizer (llm::BpeTokenizer::merges()).
 */
StatusOr<std::vector<u8>>
buildImageBytes(const Artifact &artifact,
                const std::vector<std::pair<i32, i32>> &tokenizer_merges,
                const ImageBuildOptions &options = {});

} // namespace medusa::core

#endif // MEDUSA_MEDUSA_IMAGE_H
