/**
 * @file
 * A deliberately small HTTP/1.1 layer for the serving front end:
 *
 *  - HttpParser — incremental request parser (request line, headers,
 *    Content-Length body) that can be fed arbitrary byte chunks, so it
 *    unit-tests without sockets;
 *  - HttpListener / writeAll / readInto — thin POSIX socket plumbing
 *    (loopback-oriented; no TLS, no chunked request bodies);
 *  - response builders, including the Server-Sent-Events framing the
 *    OpenAI streaming API uses (`data: {...}\n\n`, `data: [DONE]`).
 *
 * Only what /v1/completions needs — this is a research serving stack,
 * not a general web server.
 */

#ifndef MEDUSA_SERVE_HTTP_H
#define MEDUSA_SERVE_HTTP_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace medusa::serve {

/** One parsed HTTP request. */
struct HttpRequest
{
    std::string method;
    std::string target;
    /** Header names are lower-cased at parse time; values trimmed. */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Case-insensitive lookup (@p name must be lower-case). */
    const std::string *header(std::string_view name) const;
};

/**
 * Incremental HTTP/1.1 request parser. feed() bytes as they arrive;
 * once complete() the parsed request() is available. reset() to reuse
 * the parser for the next request on a keep-alive connection.
 */
class HttpParser
{
  public:
    /** Upper bound on header block + body (request smashing guard). */
    static constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
    static constexpr std::size_t kMaxBodyBytes = 4 * 1024 * 1024;

    /**
     * Consume @p bytes. Returns an error on malformed input; complete()
     * flips to true once the full request (including body) is in.
     * Bytes past the end of the current request are buffered for the
     * next reset()+feed("") cycle.
     */
    Status feed(std::string_view bytes);

    bool complete() const { return state_ == State::kDone; }
    const HttpRequest &request() const { return req_; }

    /** Drop the parsed request, keep any buffered pipelined bytes. */
    void reset();

  private:
    enum class State : u8
    {
        kHeaders = 0,
        kBody,
        kDone,
    };

    Status parseHeaderBlock();
    Status tryFinishBody();

    State state_ = State::kHeaders;
    std::string buf_;
    std::size_t body_needed_ = 0;
    HttpRequest req_;
};

/** A bound + listening TCP socket. */
class HttpListener
{
  public:
    HttpListener() = default;
    ~HttpListener();
    HttpListener(const HttpListener &) = delete;
    HttpListener &operator=(const HttpListener &) = delete;

    /** Bind and listen; @p port 0 picks an ephemeral port. */
    Status bind(const std::string &host, u16 port);

    /** The actually-bound port (after an ephemeral bind). */
    u16 port() const { return port_; }

    /**
     * Accept one connection, waiting at most @p timeout_ms. Returns
     * the connected fd, -1 on timeout, -2 once the listener is closed.
     */
    int acceptFd(int timeout_ms);

    /** Close the listening socket (unblocks pending accepts). */
    void close();

  private:
    int fd_ = -1;
    u16 port_ = 0;
};

/** Write all of @p data to @p fd; false on error / peer close. */
bool writeAll(int fd, std::string_view data);

/**
 * Read once into @p buf (appending, up to @p max_chunk bytes).
 * Returns bytes read, 0 on orderly close, -1 on error.
 */
i64 readInto(int fd, std::string &buf, std::size_t max_chunk = 16384);

/** Serialize a complete (non-streaming) response. */
std::string httpResponse(int status, std::string_view content_type,
                         std::string_view body);

/** The header block that opens a text/event-stream response. */
std::string sseResponseHead();

/** One SSE frame: `data: <payload>\n\n`. */
std::string sseEvent(std::string_view payload);

/** Reason phrase for the handful of status codes the server emits. */
const char *httpStatusText(int status);

} // namespace medusa::serve

#endif // MEDUSA_SERVE_HTTP_H
