#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace medusa::serve {

namespace {

using std::chrono::steady_clock;

/** Wait (≤ timeout_ms) for @p fd to become readable. */
bool
pollIn(int fd, int timeout_ms)
{
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    return ::poll(&p, 1, timeout_ms) > 0;
}

} // namespace

Server::Server(ServeOptions options) : options_(std::move(options))
{
    // Eager counter creation pins the registry's iteration order so
    // /metrics output is layout-stable across runs.
    metrics_.counter("server.requests");
    metrics_.counter("server.completions");
    metrics_.counter("server.chat_completions");
    metrics_.counter("server.streams");
    metrics_.counter("server.rejected");
    metrics_.counter("server.shed");
    metrics_.counter("server.failed");
    metrics_.counter("server.tokens_streamed");
    metrics_.gauge("server.active_peak");
    metrics_.gauge("server.drain_sec");

    hooks_.on_token = [this](u32 req, u32 count, f64 t) {
        onToken(req, count, t);
    };
    hooks_.on_done = [this](u32 req, RequestOutcome outcome, f64 t) {
        onDone(req, outcome, t);
    };
}

Server::~Server()
{
    if (started_ && !stopped_) {
        (void)stop();
    }
}

Status
Server::start()
{
    MEDUSA_CHECK(!started_, "Server::start called twice");
    MEDUSA_CHECK(options_.cluster.profile != nullptr,
                 "ServeOptions::cluster.profile must be set");
    MEDUSA_CHECK(options_.model_names.size() <=
                     options_.cluster.num_models,
                 "more model names than cluster.num_models");
    sched_ = std::make_unique<Scheduler>(options_.cluster, &hooks_,
                                         options_.chaos_horizon_sec);
    MEDUSA_RETURN_IF_ERROR(listener_.bind(options_.host, options_.port));
    wall0_ = steady_clock::now();
    started_ = true;
    engine_thread_ = std::thread([this] { engineLoop(); });
    accept_thread_ = std::thread([this] { acceptLoop(); });
    return Status::ok();
}

f64
Server::wallSec() const
{
    return std::chrono::duration<f64>(steady_clock::now() - wall0_)
        .count();
}

std::size_t
Server::inFlight()
{
    std::lock_guard<std::mutex> lk(engine_mu_);
    return sched_ ? sched_->inFlight() : 0;
}

void
Server::engineLoop()
{
    std::unique_lock<std::mutex> lk(engine_mu_);
    while (!engine_stop_) {
        if (options_.time_scale > 0) {
            sched_->pumpUntil(wallSec() * options_.time_scale);
            engine_cv_.wait_for(lk, std::chrono::milliseconds(1));
        } else {
            // Free-run: dispatch everything pending, but cap the lock
            // hold so connection threads can interleave submits.
            int budget = 4096;
            while (!sched_->idle() && budget-- > 0) {
                sched_->step();
            }
            if (sched_->idle()) {
                engine_cv_.wait_for(lk, std::chrono::milliseconds(1));
            }
        }
    }
}

void
Server::acceptLoop()
{
    for (;;) {
        const int fd = listener_.acceptFd(100);
        if (fd == -2) {
            return; // listener closed
        }
        if (fd < 0) {
            std::lock_guard<std::mutex> lk(engine_mu_);
            if (draining_) {
                return;
            }
            continue;
        }
        std::lock_guard<std::mutex> lk(conns_mu_);
        conns_.emplace_back([this, fd] { handleConnection(fd); });
    }
}

void
Server::handleConnection(int fd)
{
    HttpParser parser;
    std::string buf;
    bool alive = true;
    while (alive) {
        while (!parser.complete()) {
            if (!pollIn(fd, 100)) {
                std::lock_guard<std::mutex> lk(engine_mu_);
                if (draining_) {
                    alive = false;
                }
                if (!alive) {
                    break;
                }
                continue;
            }
            buf.clear();
            const i64 n = readInto(fd, buf);
            if (n <= 0) {
                alive = false;
                break;
            }
            if (!parser.feed(buf).isOk()) {
                metrics_.counter("server.rejected").add();
                writeAll(fd, httpResponse(
                                 400, "application/json",
                                 errorJson(400, "invalid_request_error",
                                           "malformed HTTP request")));
                alive = false;
                break;
            }
        }
        if (!alive) {
            break;
        }
        alive = handleRequest(fd, parser.request());
        parser.reset();
    }
    ::shutdown(fd, 2 /* SHUT_RDWR */);
    ::close(fd);
}

bool
Server::handleRequest(int fd, const HttpRequest &req)
{
    metrics_.counter("server.requests").add();

    if (req.target == "/v1/completions" ||
        req.target == "/v1/chat/completions") {
        if (req.method != "POST") {
            metrics_.counter("server.rejected").add();
            return writeAll(
                fd, httpResponse(405, "application/json",
                                 errorJson(405, "invalid_request_error",
                                           "use POST")));
        }
        return handleCompletion(fd, req,
                                req.target == "/v1/chat/completions");
    }
    if (req.target == "/healthz" && req.method == "GET") {
        Json body = Json::object();
        body.set("status", Json::string("ok"));
        body.set("in_flight",
                 Json::number(static_cast<f64>(inFlight())));
        return writeAll(
            fd, httpResponse(200, "application/json", body.dump()));
    }
    if (req.target == "/v1/models" && req.method == "GET") {
        Json data = Json::array();
        for (const std::string &name : options_.model_names) {
            Json m = Json::object();
            m.set("id", Json::string(name));
            m.set("object", Json::string("model"));
            data.push(std::move(m));
        }
        Json body = Json::object();
        body.set("object", Json::string("list"));
        body.set("data", std::move(data));
        return writeAll(
            fd, httpResponse(200, "application/json", body.dump()));
    }
    if (req.target == "/metrics" && req.method == "GET") {
        return writeAll(fd, httpResponse(200, "application/json",
                                         metrics_.toJson()));
    }
    metrics_.counter("server.rejected").add();
    return writeAll(
        fd, httpResponse(404, "application/json",
                         errorJson(404, "invalid_request_error",
                                   "unknown endpoint " + req.target)));
}

bool
Server::handleCompletion(int fd, const HttpRequest &req, bool chat)
{
    auto body = Json::parse(req.body);
    if (!body.isOk()) {
        metrics_.counter("server.rejected").add();
        return writeAll(
            fd, httpResponse(400, "application/json",
                             errorJson(400, "invalid_request_error",
                                       body.status().message())));
    }
    auto parsed = parseCompletionCall(*body, chat, options_.limits);
    if (!parsed.isOk()) {
        metrics_.counter("server.rejected").add();
        return writeAll(
            fd, httpResponse(400, "application/json",
                             errorJson(400, "invalid_request_error",
                                       parsed.status().message())));
    }
    const CompletionCall &call = *parsed;

    u16 model_id = 0;
    if (!options_.model_names.empty()) {
        const auto it =
            std::find(options_.model_names.begin(),
                      options_.model_names.end(), call.model);
        if (it == options_.model_names.end()) {
            metrics_.counter("server.rejected").add();
            return writeAll(
                fd,
                httpResponse(404, "application/json",
                             errorJson(404, "model_not_found",
                                       "unknown model " + call.model)));
        }
        model_id = static_cast<u16>(
            std::distance(options_.model_names.begin(), it));
    }

    workload::Request r;
    r.model_id = model_id;
    r.prompt_tokens = call.prompt_tokens;
    r.output_tokens = call.max_tokens;

    auto stream = std::make_shared<RequestStream>();
    u32 req_id = 0;
    {
        std::lock_guard<std::mutex> lk(engine_mu_);
        if (draining_) {
            metrics_.counter("server.rejected").add();
            return writeAll(
                fd, httpResponse(503, "application/json",
                                 errorJson(503, "server_draining",
                                           "server is shutting down")));
        }
        if (options_.time_scale > 0) {
            sched_->pumpUntil(wallSec() * options_.time_scale);
        }
        r.arrival_sec = sched_->now();
        stream->arrival_vt = r.arrival_sec;
        req_id = static_cast<u32>(sched_->submitted());
        {
            std::lock_guard<std::mutex> sg(streams_mu_);
            streams_[req_id] = stream;
            active_peak_ =
                std::max<u64>(active_peak_, streams_.size());
            metrics_.gauge("server.active_peak")
                .set(static_cast<f64>(active_peak_));
        }
        // submit() may shed synchronously — the stream must already be
        // registered so the on_done hook finds it.
        sched_->submit(r);
        metrics_
            .counter(chat ? "server.chat_completions"
                          : "server.completions")
            .add();
    }
    engine_cv_.notify_all();

    const bool keep = call.stream
                          ? streamCompletion(fd, call, req_id, stream)
                          : respondOnce(fd, call, req_id, stream);
    eraseStream(req_id);
    return keep;
}

bool
Server::streamCompletion(int fd, const CompletionCall &call, u32 req_id,
                         const std::shared_ptr<RequestStream> &stream)
{
    // First event decides the response shape: a token opens the SSE
    // stream; a terminal outcome with no tokens becomes an error body.
    {
        std::unique_lock<std::mutex> lk(stream->mu);
        stream->cv.wait(lk, [&] {
            return !stream->pending.empty() || stream->done;
        });
        if (stream->done && stream->high_water == 0) {
            lk.unlock();
            const bool shed =
                stream->outcome != RequestOutcome::kFailed;
            return writeAll(
                fd,
                httpResponse(
                    shed ? 503 : 500, "application/json",
                    errorJson(shed ? 503 : 500,
                              shed ? "server_overloaded"
                                   : "server_error",
                              shed ? "request shed by admission "
                                     "control or deadline policy"
                                   : "instance failed; retries "
                                     "exhausted")));
        }
    }

    if (!writeAll(fd, sseResponseHead())) {
        return false;
    }
    metrics_.counter("server.streams").add();
    const std::string id = completionId(call.chat, req_id);
    bool first = true;
    for (;;) {
        std::deque<std::string> batch;
        bool done = false;
        {
            std::unique_lock<std::mutex> lk(stream->mu);
            stream->cv.wait(lk, [&] {
                return !stream->pending.empty() || stream->done;
            });
            batch.swap(stream->pending);
            done = stream->done;
        }
        for (const std::string &tok : batch) {
            if (!writeAll(fd, sseEvent(completionChunkJson(
                                  call, id, tok, first)))) {
                return false; // client went away; engine finishes alone
            }
            first = false;
        }
        if (done) {
            break;
        }
    }
    writeAll(fd, sseEvent(completionDoneJson(call, id, "length")));
    writeAll(fd, sseEvent("[DONE]"));
    return false; // SSE responses close the connection
}

bool
Server::respondOnce(int fd, const CompletionCall &call, u32 req_id,
                    const std::shared_ptr<RequestStream> &stream)
{
    std::unique_lock<std::mutex> lk(stream->mu);
    stream->cv.wait(lk, [&] { return stream->done; });
    if (stream->high_water == 0) {
        const bool shed = stream->outcome != RequestOutcome::kFailed;
        lk.unlock();
        return writeAll(
            fd,
            httpResponse(
                shed ? 503 : 500, "application/json",
                errorJson(shed ? 503 : 500,
                          shed ? "server_overloaded" : "server_error",
                          shed ? "request shed by admission control "
                                 "or deadline policy"
                               : "instance failed; retries "
                                 "exhausted")));
    }
    std::string text;
    for (const std::string &tok : stream->pending) {
        text += tok;
    }
    const u32 n_tokens = stream->high_water;
    lk.unlock();
    return writeAll(
        fd, httpResponse(200, "application/json",
                         completionResponseJson(
                             call, completionId(call.chat, req_id),
                             text, n_tokens, "length")));
}

std::shared_ptr<Server::RequestStream>
Server::findStream(u32 req)
{
    std::lock_guard<std::mutex> lk(streams_mu_);
    const auto it = streams_.find(req);
    return it == streams_.end() ? nullptr : it->second;
}

void
Server::eraseStream(u32 req)
{
    std::lock_guard<std::mutex> lk(streams_mu_);
    streams_.erase(req);
}

void
Server::onToken(u32 req, u32 count, f64 t_sec)
{
    const auto stream = findStream(req);
    if (stream == nullptr) {
        return;
    }
    std::lock_guard<std::mutex> lk(stream->mu);
    // A crash-requeued request re-emits from count 1; only tokens
    // above the high-water mark are new.
    if (count <= stream->high_water) {
        return;
    }
    stream->high_water = count;
    if (count == 1) {
        stream->first_token_vt = t_sec;
    }
    stream->pending.push_back(tokenText(req, count - 1));
    metrics_.counter("server.tokens_streamed").add();
    stream->cv.notify_all();
}

void
Server::onDone(u32 req, RequestOutcome outcome, f64 t_sec)
{
    switch (outcome) {
    case RequestOutcome::kCompleted:
        break;
    case RequestOutcome::kShedAdmission:
    case RequestOutcome::kShedDeadline:
        metrics_.counter("server.shed").add();
        break;
    case RequestOutcome::kFailed:
        metrics_.counter("server.failed").add();
        break;
    }
    const auto stream = findStream(req);
    if (stream == nullptr) {
        return;
    }
    f64 arrival = 0;
    {
        std::lock_guard<std::mutex> lk(stream->mu);
        stream->done = true;
        stream->outcome = outcome;
        stream->done_vt = t_sec;
        arrival = stream->arrival_vt;
        stream->cv.notify_all();
    }
    spans_.complete("server.request", "server", 0,
                    units::secToNs(arrival),
                    units::secToNs(t_sec - arrival));
}

void
Server::requestStop()
{
    {
        std::lock_guard<std::mutex> lk(engine_mu_);
        draining_ = true;
    }
    listener_.close();
}

serverless::TraceMetrics
Server::stop()
{
    MEDUSA_CHECK(started_, "Server::stop before start");
    if (stopped_) {
        return final_metrics_;
    }
    const f64 drain_start = wallSec();
    requestStop();
    if (accept_thread_.joinable()) {
        accept_thread_.join();
    }

    // Let in-flight requests run to completion on the engine thread.
    const auto deadline =
        steady_clock::now() +
        std::chrono::duration_cast<steady_clock::duration>(
            std::chrono::duration<f64>(options_.drain_timeout_sec));
    while (steady_clock::now() < deadline && inFlight() > 0) {
        engine_cv_.notify_all();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    {
        std::lock_guard<std::mutex> lk(engine_mu_);
        engine_stop_ = true;
    }
    engine_cv_.notify_all();
    if (engine_thread_.joinable()) {
        engine_thread_.join();
    }

    {
        std::lock_guard<std::mutex> lk(engine_mu_);
        // Anything still pending (keep-alive timers, stragglers past
        // the drain timeout) dispatches here; hooks mark the last
        // streams done so their connection threads can exit.
        sched_->drain();
        final_metrics_ = sched_->finish();
    }
    engine_cv_.notify_all();

    {
        std::lock_guard<std::mutex> lk(conns_mu_);
        for (std::thread &t : conns_) {
            if (t.joinable()) {
                t.join();
            }
        }
        conns_.clear();
    }

    metrics_.gauge("server.drain_sec").set(wallSec() - drain_start);
    if (options_.cluster.pipeline.trace != nullptr) {
        options_.cluster.pipeline.trace->appendAll(spans_.events());
    }
    if (options_.cluster.pipeline.metrics != nullptr) {
        options_.cluster.pipeline.metrics->mergeFrom(
            metrics_.snapshot());
    }
    stopped_ = true;
    return final_metrics_;
}

MetricsSnapshot
Server::metricsSnapshot() const
{
    return metrics_.snapshot();
}

} // namespace medusa::serve
