/**
 * @file
 * Scheduler implementation — the former cluster_fast.cc state machine
 * (see scheduler.h and DESIGN.md §15–§17). The arithmetic in
 * launchInstance/startStep is kept expression-for-expression
 * identical to the legacy cluster.cc loop so the two engines produce
 * bit-equal latencies; every hook call is a pure observation added
 * after the corresponding state transition.
 */

#include <algorithm>
#include <bit>
#include <limits>
#include <string_view>

#include "serve/scheduler.h"

namespace medusa::serve {

using serverless::ChaosEvent;
using serverless::ClusterOptions;
using serverless::EventHandle;
using serverless::SchedulerPolicy;
using serverless::ServingProfile;
using serverless::TraceMetrics;
using serverless::buildChaosSchedule;

// ---- LoadIndex -----------------------------------------------------------

void
Scheduler::LoadIndex::init(u32 num_loads)
{
    counts_.assign(num_loads, 0);
    words_.assign(static_cast<std::size_t>(num_loads) * stride_, 0);
}

void
Scheduler::LoadIndex::add(u32 load, u32 inst)
{
    while (inst >= stride_ * 64) {
        grow();
    }
    if (load >= counts_.size()) {
        // Loads can exceed max_seqs_per_instance transiently: an
        // in-flight prefill batch leaves the load count, the
        // dispatcher tops the instance back up, and the batch's
        // survivors rejoin on completion.
        counts_.resize(load + 1, 0);
        words_.resize(static_cast<std::size_t>(load + 1) * stride_, 0);
    }
    words_[static_cast<std::size_t>(load) * stride_ + inst / 64] |=
        1ull << (inst % 64);
    ++counts_[load];
}

void
Scheduler::LoadIndex::remove(u32 load, u32 inst)
{
    words_[static_cast<std::size_t>(load) * stride_ + inst / 64] &=
        ~(1ull << (inst % 64));
    --counts_[load];
}

void
Scheduler::LoadIndex::move(u32 from, u32 to, u32 inst)
{
    remove(from, inst);
    add(to, inst);
}

u32
Scheduler::LoadIndex::bestBelow(u32 cap) const
{
    const u32 limit =
        std::min<u32>(cap, static_cast<u32>(counts_.size()));
    for (u32 load = limit; load-- > 0;) {
        if (counts_[load] == 0) {
            continue;
        }
        const u64 *row =
            words_.data() + static_cast<std::size_t>(load) * stride_;
        for (u32 w = 0; w < stride_; ++w) {
            if (row[w] != 0) {
                return w * 64 +
                       static_cast<u32>(std::countr_zero(row[w]));
            }
        }
    }
    return kNil;
}

void
Scheduler::LoadIndex::grow()
{
    const u32 new_stride = stride_ * 2;
    std::vector<u64> next(
        static_cast<std::size_t>(counts_.size()) * new_stride, 0);
    for (std::size_t load = 0; load < counts_.size(); ++load) {
        for (u32 w = 0; w < stride_; ++w) {
            next[load * new_stride + w] = words_[load * stride_ + w];
        }
    }
    words_ = std::move(next);
    stride_ = new_stride;
}

// ---- construction (the former run() prologue + initState) ----------------

Scheduler::Scheduler(const ClusterOptions &options,
                     const RequestHooks *hooks, f64 chaos_horizon_sec)
    : options_(options), profile_(*options.profile), hooks_(hooks),
      rec_([this]() { return units::secToNs(engine_.now()); }),
      trace_(options_.pipeline.trace != nullptr ? &rec_ : nullptr)
{
    MEDUSA_CHECK(options.profile != nullptr,
                 "ClusterOptions::profile must be set");
    MEDUSA_CHECK(options_.num_models >= 1 &&
                     options_.num_models <= kNoModel,
                 "bad num_models");
    MEDUSA_CHECK(options_.max_seqs_per_instance >= 1,
                 "need max_seqs_per_instance >= 1");
    chaos_on_ = options_.chaos != nullptr && options_.chaos->enabled();
    slo_on_ = options_.slo.enabled();
    nodes_on_ = options_.num_models > 1 ||
                options_.policy == SchedulerPolicy::kAffinity ||
                (chaos_on_ && options_.chaos->node_mtbf_sec > 0);

    hooked_cache_ =
        trace_ != nullptr && options_.artifact_cache != nullptr;
    if (hooked_cache_) {
        options_.artifact_cache->setTraceRecorder(trace_);
    }
    if (trace_ != nullptr) {
        rec_.setTrackName(0, "cluster");
        rec_.setTrackName(1, "requests");
    }

    const u32 cap = options_.max_seqs_per_instance;
    by_load_.resize(options_.num_models);
    for (auto &index : by_load_) {
        index.init(cap + 1);
    }
    wait_head_.assign(options_.num_models, kNil);
    wait_tail_.assign(options_.num_models, kNil);
    wait_count_.assign(options_.num_models, 0);
    pending_.assign(options_.num_models, 0);

    if (nodes_on_) {
        const u32 gpn = std::max<u32>(1, options_.gpus_per_node);
        const u32 nodes = (options_.num_gpus + gpn - 1) / gpn;
        node_free_.assign(nodes, gpn);
        if (options_.num_gpus % gpn != 0) {
            node_free_.back() = options_.num_gpus % gpn;
        }
        node_cap_ = node_free_;
        const u32 slots = std::max<u32>(1, options_.node_artifact_slots);
        node_models_.assign(static_cast<std::size_t>(nodes) * slots,
                            kNoModel);
        node_stamp_.assign(node_models_.size(), 0);
        // Eager-create the study's counters so every policy run
        // exports the same metric name set (zeros included).
        metrics_.counter("cluster.node_warm_launches");
        metrics_.counter("cluster.node_artifact_fetches");
        metrics_.counter("cluster.affinity_evictions");
    }
    if (options_.policy != SchedulerPolicy::kBaseline) {
        metrics_.counter("cluster.cold_pool_hits");
        metrics_.gauge("cluster.keep_alive_gpu_seconds");
    }
    if (chaos_on_ || slo_on_) {
        // Eager-create the full chaos/SLO name set so every matrix
        // cell of the failure study exports the same schema (zeros
        // included) whatever subset of failure classes fires.
        metrics_.counter("cluster.chaos.node_crashes");
        metrics_.counter("cluster.chaos.node_recoveries");
        metrics_.counter("cluster.chaos.instance_crashes");
        metrics_.counter("cluster.chaos.requeued_requests");
        metrics_.counter("cluster.chaos.store_outages");
        metrics_.gauge("cluster.chaos.store_outage_delay_sec");
        metrics_.counter("cluster.chaos.gray_windows");
        metrics_.counter("cluster.chaos.gray_fetches");
        metrics_.counter("cluster.chaos.lost_residency");
        metrics_.counter("cluster.slo.shed_admission");
        metrics_.counter("cluster.slo.shed_deadline");
        metrics_.counter("cluster.slo.failed_requests");
        metrics_.counter("cluster.slo.retries");
        metrics_.counter("cluster.slo.degraded_launches");
        metrics_.counter("cluster.slo.deadline_met");
        metrics_.counter("cluster.slo.deadline_missed");
        metrics_.gauge("cluster.slo.goodput_qps");
    }
    if (chaos_on_) {
        f64 horizon = options_.chaos->horizon_sec;
        if (horizon <= 0) {
            horizon = chaos_horizon_sec;
        }
        chaos_sched_ = buildChaosSchedule(*options_.chaos, horizon);
        for (std::size_t i = 0; i < chaos_sched_.size(); ++i) {
            engine_.schedule(
                chaos_sched_[i].start_sec,
                Ev{Ev::Kind::kChaos, 0, static_cast<u32>(i)});
        }
        if (nodes_on_) {
            node_down_.assign(node_free_.size(), 0);
        }
    }
    if (profile_.deferred_capture) {
        warmed_stride_ = (profile_.batch_sizes.size() + 63) / 64;
    }

    // §2.4 hot spares: live from t=0 on model 0, never reclaimed.
    for (u32 i = 0;
         i < std::min(options_.hot_spares, options_.num_gpus); ++i) {
        const u32 inst = newInstance(/*model=*/0, chooseNode(0));
        inst_state_[inst] = kLive;
        inst_hot_spare_[inst] = 1;
        --pending_[0];
        ++live_count_;
        peak_live_ = std::max(peak_live_, live_count_);
        by_load_[0].add(0, inst);
    }
}

// ---- submission / driving (the former runLoop, inverted) -----------------

u32
Scheduler::submit(const workload::Request &r)
{
    MEDUSA_CHECK(!finished_, "submit after finish");
    MEDUSA_CHECK(r.model_id < options_.num_models,
                 "request model_id out of range");
    const u32 req = static_cast<u32>(req_arrival_.size());
    req_arrival_.push_back(r.arrival_sec);
    req_prompt_.push_back(r.prompt_tokens);
    req_output_.push_back(std::max<u32>(r.output_tokens, 1));
    req_model_.push_back(r.model_id);
    req_deadline_.push_back(r.ttft_deadline_sec > 0
                                ? r.ttft_deadline_sec
                                : options_.slo.default_ttft_sec);
    req_generated_.push_back(0);
    req_first_token_.push_back(-1.0);
    req_finished_.push_back(-1.0);
    req_next_.push_back(kNil);
    req_retries_.push_back(0);
    req_state_.push_back(kStWaiting);
    ++arrival_events_;
    onArrival(req);
    return req;
}

void
Scheduler::step()
{
    engine_.step([this](const Ev &ev) { dispatchEvent(ev); });
}

void
Scheduler::advanceTo(f64 t_sec)
{
    engine_.advanceTo(t_sec);
}

void
Scheduler::pumpUntil(f64 t_sec)
{
    while (!engine_.empty() && engine_.peekTime() <= t_sec) {
        step();
    }
    if (t_sec > engine_.now()) {
        engine_.advanceTo(t_sec);
    }
}

void
Scheduler::drain()
{
    while (!engine_.empty()) {
        step();
    }
}

void
Scheduler::dispatchEvent(const Ev &ev)
{
    switch (ev.kind) {
    case Ev::Kind::kArrival:
        onArrival(ev.inst);
        break;
    case Ev::Kind::kStepDone:
        onStepDone(ev.inst);
        break;
    case Ev::Kind::kLaunchDone:
        onLaunchDone(ev.inst, ev.flag != 0);
        break;
    case Ev::Kind::kIdleReclaim:
        onIdleReclaim(ev.inst);
        break;
    case Ev::Kind::kChaos:
        onChaosEvent(ev.inst);
        break;
    case Ev::Kind::kNodeRecover:
        onNodeRecover(ev.inst);
        break;
    case Ev::Kind::kDeadline:
        onDeadline(ev.inst);
        break;
    case Ev::Kind::kRetryAdmit:
        onRetryAdmit(ev.inst);
        break;
    }
}

// ---- hook plumbing -------------------------------------------------------

void
Scheduler::markTerminal(u32 req, RequestOutcome outcome)
{
    ++terminal_count_;
    if (hooks_ != nullptr && hooks_->on_done) {
        hooks_->on_done(req, outcome, engine_.now());
    }
}

void
Scheduler::emitToken(u32 req, u32 count)
{
    if (hooks_ != nullptr && hooks_->on_token) {
        hooks_->on_token(req, count, engine_.now());
    }
}

// ---- request/instance bookkeeping ----------------------------------------

u32
Scheduler::instLoad(u32 inst) const
{
    return inst_prefill_count_[inst] + inst_running_count_[inst];
}

void
Scheduler::setLoad(u32 inst, u32 old_load, u32 new_load)
{
    if (inst_state_[inst] == kLive && old_load != new_load) {
        by_load_[inst_model_[inst]].move(old_load, new_load, inst);
    }
}

u32
Scheduler::newInstance(u16 model, u32 node)
{
    const u32 inst = static_cast<u32>(inst_state_.size());
    inst_state_.push_back(kColdStarting);
    inst_hot_spare_.push_back(0);
    inst_stepping_.push_back(0);
    inst_step_is_prefill_.push_back(0);
    inst_model_.push_back(model);
    inst_node_.push_back(node);
    inst_prefill_head_.push_back(kNil);
    inst_prefill_tail_.push_back(kNil);
    inst_prefill_count_.push_back(0);
    inst_batch_head_.push_back(kNil);
    inst_running_head_.push_back(kNil);
    inst_running_tail_.push_back(kNil);
    inst_running_count_.push_back(0);
    inst_launched_at_.push_back(engine_.now());
    inst_died_at_.push_back(-1.0);
    inst_idle_since_.push_back(engine_.now());
    inst_idle_timer_.push_back(EventHandle{});
    inst_step_timer_.push_back(EventHandle{});
    inst_launch_timer_.push_back(EventHandle{});
    if (warmed_stride_ > 0) {
        inst_warmed_.resize(inst_warmed_.size() + warmed_stride_, 0);
    }
    ++pending_[model];
    ++busy_gpus_;
    if (node != kNil) {
        --node_free_[node];
    }
    return inst;
}

void
Scheduler::killInstance(u32 inst)
{
    inst_state_[inst] = kDead;
    inst_died_at_[inst] = engine_.now();
    --busy_gpus_;
    if (inst_node_[inst] != kNil) {
        ++node_free_[inst_node_[inst]];
    }
}

// ---- dispatch (assignment + autoscale) -----------------------------------

void
Scheduler::dispatch()
{
    const u32 cap = options_.max_seqs_per_instance;
    // Feed live instances, packing onto the most-loaded one that
    // still has capacity (the legacy bin-packing rule, served by
    // the load index).
    for (u16 m = 0; m < options_.num_models; ++m) {
        while (wait_count_[m] > 0) {
            const u32 best = by_load_[m].bestBelow(cap);
            if (best == kNil) {
                break;
            }
            const u32 req = popWaiting(m);
            assignTo(best, req);
        }
    }
    // Autoscale: cold-start new instances for unserved demand that
    // pending cold starts will not absorb. Down nodes' GPUs are out
    // of the budget until they recover (down_gpus_ is 0 otherwise).
    for (u16 m = 0; m < options_.num_models; ++m) {
        while (wait_count_[m] > static_cast<u64>(pending_[m]) * cap &&
               busy_gpus_ < options_.num_gpus - down_gpus_) {
            if (!launchInstance(m)) {
                break; // free GPUs exist only on down nodes
            }
        }
    }
}

u32
Scheduler::popWaiting(u16 m)
{
    // Deadline-shed requests are removed lazily: they stay linked
    // (already uncounted from wait_count_) until popped here.
    for (;;) {
        const u32 req = wait_head_[m];
        wait_head_[m] = req_next_[req];
        if (wait_head_[m] == kNil) {
            wait_tail_[m] = kNil;
        }
        req_next_[req] = kNil;
        if (req_state_[req] == kStShed) {
            continue;
        }
        --wait_count_[m];
        return req;
    }
}

void
Scheduler::assignTo(u32 inst, u32 req)
{
    req_state_[req] = kStAssigned;
    const u32 load = instLoad(inst);
    // Policy accounting first: an assignment to an instance that
    // outlived the baseline idle timeout is a cold start the warm
    // pool absorbed.
    if (options_.policy != SchedulerPolicy::kBaseline &&
        inst_hot_spare_[inst] == 0 && load == 0 &&
        !inst_stepping_[inst]) {
        const f64 idle = engine_.now() - inst_idle_since_[inst];
        if (idle > options_.idle_timeout_sec) {
            metrics_.counter("cluster.cold_pool_hits").add(1);
            if (options_.policy == SchedulerPolicy::kKeepAlive) {
                metrics_.gauge("cluster.keep_alive_gpu_seconds")
                    .add(idle - options_.idle_timeout_sec);
            }
        }
    }
    // Enqueue for prefill; cancel any pending idle reclaim (the
    // legacy epoch bump, as a real O(log n) heap removal).
    if (inst_prefill_tail_[inst] == kNil) {
        inst_prefill_head_[inst] = req;
    } else {
        req_next_[inst_prefill_tail_[inst]] = req;
    }
    inst_prefill_tail_[inst] = req;
    req_next_[req] = kNil;
    ++inst_prefill_count_[inst];
    setLoad(inst, load, load + 1);
    engine_.cancel(inst_idle_timer_[inst]);
    inst_idle_timer_[inst] = EventHandle{};
    if (inst_stepping_[inst] == 0) {
        startStep(inst);
    }
}

// ---- instance launch (identical timing math to cluster.cc) ---------------

void
Scheduler::traceLaunchSpan(std::string_view name,
                           std::string_view category, f64 start_sec,
                           f64 dur_sec)
{
    if (trace_ != nullptr) {
        trace_->complete(name, category, 0, units::secToNs(start_sec),
                         units::secToNs(dur_sec));
    }
}

bool
Scheduler::nodeDown(u32 n) const
{
    return !node_down_.empty() && node_down_[n] != 0;
}

u32
Scheduler::chooseNode(u16 m)
{
    if (!nodes_on_) {
        return kNil;
    }
    const u32 nodes = static_cast<u32>(node_free_.size());
    const u32 slots =
        static_cast<u32>(node_models_.size() / node_free_.size());
    if (options_.policy == SchedulerPolicy::kAffinity) {
        // Pass 1: a free GPU on a node where the artifact is
        // already resident (the warm launch affinity exists for).
        for (u32 n = 0; n < nodes; ++n) {
            if (node_free_[n] == 0 || nodeDown(n)) {
                continue;
            }
            for (u32 s = 0; s < slots; ++s) {
                if (node_models_[n * slots + s] == m) {
                    return n;
                }
            }
        }
        // Pass 2: a node with a free artifact slot (fetch without
        // evicting anyone).
        for (u32 n = 0; n < nodes; ++n) {
            if (node_free_[n] == 0 || nodeDown(n)) {
                continue;
            }
            for (u32 s = 0; s < slots; ++s) {
                if (node_models_[n * slots + s] == kNoModel) {
                    return n;
                }
            }
        }
        // Pass 3: evict the globally least-recently-used artifact
        // among nodes that still have a free GPU.
        u32 best = kNil;
        u64 best_stamp = ~0ull;
        for (u32 n = 0; n < nodes; ++n) {
            if (node_free_[n] == 0 || nodeDown(n)) {
                continue;
            }
            for (u32 s = 0; s < slots; ++s) {
                if (node_stamp_[n * slots + s] < best_stamp) {
                    best_stamp = node_stamp_[n * slots + s];
                    best = n;
                }
            }
        }
        return best;
    }
    // Baseline / keep-alive placement ignores artifact residency:
    // the first node with a free GPU.
    for (u32 n = 0; n < nodes; ++n) {
        if (node_free_[n] > 0 && !nodeDown(n)) {
            return n;
        }
    }
    return kNil;
}

f64
Scheduler::nodeFetch(u32 node, u16 m)
{
    const u32 slots =
        static_cast<u32>(node_models_.size() / node_free_.size());
    const std::size_t base = static_cast<std::size_t>(node) * slots;
    for (u32 s = 0; s < slots; ++s) {
        if (node_models_[base + s] == m) {
            node_stamp_[base + s] = ++lru_tick_;
            metrics_.counter("cluster.node_warm_launches").add(1);
            return 0.0;
        }
    }
    metrics_.counter("cluster.node_artifact_fetches").add(1);
    u32 victim = 0;
    u64 victim_stamp = ~0ull;
    bool free_slot = false;
    for (u32 s = 0; s < slots; ++s) {
        if (node_models_[base + s] == kNoModel) {
            victim = s;
            free_slot = true;
            break;
        }
        if (node_stamp_[base + s] < victim_stamp) {
            victim_stamp = node_stamp_[base + s];
            victim = s;
        }
    }
    if (!free_slot) {
        metrics_.counter("cluster.affinity_evictions").add(1);
    }
    node_models_[base + victim] = m;
    node_stamp_[base + victim] = ++lru_tick_;
    return options_.node_artifact_miss_sec;
}

bool
Scheduler::launchInstance(u16 m)
{
    const u32 node = chooseNode(m);
    if (nodes_on_ && node == kNil) {
        return false; // only reachable inside a chaos crash window
    }
    metrics_.counter("cluster.cold_starts").add(1);
    const u32 inst = newInstance(m, node);
    const f64 t0 = engine_.now();
    // Artifact fetch via the process-wide cache (legacy semantics:
    // first cold start loads, later ones share for free).
    f64 fetch_sec = 0;
    if (options_.artifact_cache != nullptr && options_.artifact_loader) {
        bool hit = false;
        auto artifact = options_.artifact_cache->getOrLoad(
            options_.artifact_key, options_.artifact_loader, &hit);
        metrics_.counter("cluster.artifact_loads").add(1);
        if (artifact.isOk() && hit) {
            metrics_.counter("cluster.artifact_cache_hits").add(1);
        } else {
            fetch_sec = options_.artifact_miss_sec;
        }
    }
    // Node-local residency (the affinity study's fetch model).
    if (nodes_on_ && node != kNil) {
        fetch_sec += nodeFetch(node, m);
    }
    // Chaos fetch model: a fetch inside a store outage hangs until
    // the store recovers (unless the SLO policy degrades to the
    // vanilla cold start, bypassing the store); a fetch inside a
    // gray window completes, gray_slowdown times slower.
    bool degrade = false;
    if (chaos_on_ && fetch_sec > 0) {
        if (t0 < store_until_) {
            const f64 wait = store_until_ - t0;
            const f64 vanilla = options_.vanilla_cold_start_sec > 0
                                    ? options_.vanilla_cold_start_sec
                                    : profile_.cold_start_sec;
            if (slo_on_ && options_.slo.degrade_to_vanilla &&
                vanilla < wait + fetch_sec + profile_.cold_start_sec) {
                degrade = true;
            } else {
                fetch_sec += wait;
                metrics_.gauge("cluster.chaos.store_outage_delay_sec")
                    .add(wait);
            }
        } else if (t0 < gray_until_) {
            fetch_sec *= options_.chaos->gray_slowdown;
            metrics_.counter("cluster.chaos.gray_fetches").add(1);
        }
    }
    if (degrade) {
        metrics_.counter("cluster.slo.degraded_launches").add(1);
        const f64 vanilla = options_.vanilla_cold_start_sec > 0
                                ? options_.vanilla_cold_start_sec
                                : profile_.cold_start_sec;
        traceLaunchSpan("slo.degrade_vanilla", "fallback", t0, vanilla);
        launch_sec_.add(vanilla);
        traceLaunchSpan("instance.launch", "cluster", t0, vanilla);
        inst_launch_timer_[inst] = engine_.scheduleAfter(
            vanilla, Ev{Ev::Kind::kLaunchDone, 1, inst});
        return true;
    }
    // Restore / fault / fallback timing — the arithmetic below is
    // kept expression-for-expression identical to cluster.cc so
    // the two engines produce bit-equal launch latencies.
    f64 launch_delay = fetch_sec;
    bool comes_alive = true;
    FaultInjector *fault = options_.pipeline.fault;
    if (fault == nullptr) {
        traceLaunchSpan("restore.attempt", "restore", t0 + launch_delay,
                        profile_.cold_start_sec);
        launch_delay += profile_.cold_start_sec;
    } else {
        const core::FallbackPolicy &fb = options_.fallback;
        const u32 max_attempts =
            fb.mode == core::FallbackMode::kRetryThenVanilla
                ? std::max<u32>(1, fb.max_attempts)
                : 1;
        f64 backoff = fb.backoff_sec;
        bool restored = false;
        for (u32 attempt = 1; attempt <= max_attempts; ++attempt) {
            if (fault
                    ->check(FaultPoint::kClusterRestore,
                            "instance launch")
                    .isOk()) {
                traceLaunchSpan("restore.attempt", "restore",
                                t0 + launch_delay,
                                profile_.cold_start_sec);
                launch_delay += profile_.cold_start_sec;
                restored = true;
                break;
            }
            const f64 wasted =
                fault->drawFraction(FaultPoint::kClusterRestore) *
                profile_.cold_start_sec;
            traceLaunchSpan("restore.attempt", "restore",
                            t0 + launch_delay, wasted);
            if (trace_ != nullptr) {
                TraceEvent ev;
                ev.name = "restore.attempt_failed";
                ev.category = "restore";
                ev.phase = TraceEvent::Phase::kInstant;
                ev.start_ns = units::secToNs(t0 + launch_delay + wasted);
                trace_->append(std::move(ev));
            }
            launch_delay += wasted;
            metrics_.gauge("cluster.wasted_restore_sec").add(wasted);
            metrics_.counter("cluster.restore_failures").add(1);
            if (fb.mode == core::FallbackMode::kFail) {
                comes_alive = false;
                break;
            }
            if (attempt < max_attempts) {
                metrics_.counter("cluster.retries").add(1);
                launch_delay += backoff;
                backoff *= fb.backoff_multiplier;
            }
        }
        if (!restored && comes_alive) {
            metrics_.counter("cluster.fallback_cold_starts").add(1);
            const f64 vanilla = options_.vanilla_cold_start_sec > 0
                                    ? options_.vanilla_cold_start_sec
                                    : profile_.cold_start_sec;
            traceLaunchSpan("fallback.vanilla_cold_start", "fallback",
                            t0 + launch_delay, vanilla);
            launch_delay += vanilla;
        }
    }
    launch_sec_.add(launch_delay);
    traceLaunchSpan("instance.launch", "cluster", t0, launch_delay);
    inst_launch_timer_[inst] = engine_.scheduleAfter(
        launch_delay, Ev{Ev::Kind::kLaunchDone,
                         static_cast<u8>(comes_alive ? 1 : 0), inst});
    return true;
}

// ---- event handlers ------------------------------------------------------

void
Scheduler::onArrival(u32 req)
{
    if (slo_on_) {
        const f64 deadline = req_deadline_[req];
        if (options_.slo.admission_control && deadline > 0 &&
            projectedWaitSec(req_model_[req]) > deadline) {
            shedRequest(req, /*admission=*/true);
            return;
        }
        if (options_.slo.shed_on_deadline && deadline > 0) {
            engine_.scheduleAfter(deadline,
                                  Ev{Ev::Kind::kDeadline, 0, req});
        }
    }
    enqueueWaiting(req);
    dispatch();
}

void
Scheduler::enqueueWaiting(u32 req)
{
    const u16 m = req_model_[req];
    req_state_[req] = kStWaiting;
    if (wait_tail_[m] == kNil) {
        wait_head_[m] = req;
    } else {
        req_next_[wait_tail_[m]] = req;
    }
    wait_tail_[m] = req;
    req_next_[req] = kNil;
    ++wait_count_[m];
}

void
Scheduler::onLaunchDone(u32 inst, bool alive)
{
    inst_launch_timer_[inst] = EventHandle{};
    const u16 m = inst_model_[inst];
    --pending_[m];
    if (!alive) {
        // kFail: the instance dies after the wasted restore time;
        // dispatch() sees the freed GPU and relaunches for any
        // still-unserved demand.
        killInstance(inst);
        dispatch();
        return;
    }
    inst_state_[inst] = kLive;
    ++live_count_;
    peak_live_ = std::max(peak_live_, live_count_);
    inst_idle_since_[inst] = engine_.now();
    by_load_[m].add(instLoad(inst), inst);
    dispatch();
    if (instLoad(inst) == 0) {
        armIdleTimeout(inst);
    }
}

void
Scheduler::onStepDone(u32 inst)
{
    inst_step_timer_[inst] = EventHandle{};
    const f64 now = engine_.now();
    const u32 load_before = instLoad(inst);
    u32 load = load_before;
    if (inst_step_is_prefill_[inst] != 0) {
        // Prefill completion: the batch emits its first tokens;
        // survivors join the decode set (in batch order, as the
        // legacy push_back did).
        u32 req = inst_batch_head_[inst];
        inst_batch_head_[inst] = kNil;
        while (req != kNil) {
            const u32 next = req_next_[req];
            if (req_first_token_[req] < 0) {
                // A crash-requeued request keeps its earliest
                // first-token time (re-prefill is a re-emission).
                req_first_token_[req] = now;
                if (hooks_ != nullptr && hooks_->on_first_token) {
                    hooks_->on_first_token(req, now);
                }
            }
            req_generated_[req] = 1;
            emitToken(req, 1);
            if (req_generated_[req] >= req_output_[req]) {
                req_finished_[req] = now;
                req_state_[req] = kStDone;
                req_next_[req] = kNil;
                markTerminal(req, RequestOutcome::kCompleted);
            } else {
                if (inst_running_tail_[inst] == kNil) {
                    inst_running_head_[inst] = req;
                } else {
                    req_next_[inst_running_tail_[inst]] = req;
                }
                inst_running_tail_[inst] = req;
                req_next_[req] = kNil;
                ++inst_running_count_[inst];
                ++load;
            }
            req = next;
        }
    } else {
        // Decode completion over all running sequences.
        u32 prev = kNil;
        u32 req = inst_running_head_[inst];
        while (req != kNil) {
            const u32 next = req_next_[req];
            ++req_generated_[req];
            emitToken(req, req_generated_[req]);
            if (req_generated_[req] >= req_output_[req]) {
                req_finished_[req] = now;
                req_state_[req] = kStDone;
                if (prev == kNil) {
                    inst_running_head_[inst] = next;
                } else {
                    req_next_[prev] = next;
                }
                if (next == kNil) {
                    inst_running_tail_[inst] = prev;
                }
                req_next_[req] = kNil;
                --inst_running_count_[inst];
                --load;
                markTerminal(req, RequestOutcome::kCompleted);
            } else {
                prev = req;
            }
            req = next;
        }
    }
    setLoad(inst, load_before, load);
    finishStep(inst);
}

void
Scheduler::onIdleReclaim(u32 inst)
{
    inst_idle_timer_[inst] = EventHandle{};
    if (inst_state_[inst] != kLive || instLoad(inst) != 0 ||
        inst_stepping_[inst] != 0) {
        return; // defensive; cancellation makes this unreachable
    }
    if (options_.policy == SchedulerPolicy::kKeepAlive &&
        live_count_ <= options_.keep_alive_instances) {
        // Warm-pool floor: stay alive, unarmed — the next
        // assignment (a cold_pool_hit) or the end of the run bills
        // the idle GPU-seconds.
        return;
    }
    if (options_.policy == SchedulerPolicy::kKeepAlive) {
        const f64 idle = engine_.now() - inst_idle_since_[inst];
        if (idle > options_.idle_timeout_sec) {
            metrics_.gauge("cluster.keep_alive_gpu_seconds")
                .add(idle - options_.idle_timeout_sec);
        }
    }
    by_load_[inst_model_[inst]].remove(0, inst);
    --live_count_;
    killInstance(inst);
}

// ---- the step loop (identical timing math to cluster.cc) -----------------

void
Scheduler::startStep(u32 inst)
{
    MEDUSA_CHECK(inst_stepping_[inst] == 0, "instance already stepping");
    if (inst_prefill_count_[inst] > 0) {
        // Prefill step: batch admitted prompts up to the token
        // budget (they leave the load count while in flight, as
        // the legacy local batch vector did).
        const u32 load_before = instLoad(inst);
        u32 tokens = 0;
        u32 batched = 0;
        u32 tail = kNil;
        while (inst_prefill_count_[inst] > 0) {
            const u32 req = inst_prefill_head_[inst];
            if (batched > 0 && tokens + req_prompt_[req] >
                                   options_.max_batched_tokens) {
                break;
            }
            tokens += req_prompt_[req];
            inst_prefill_head_[inst] = req_next_[req];
            if (inst_prefill_head_[inst] == kNil) {
                inst_prefill_tail_[inst] = kNil;
            }
            --inst_prefill_count_[inst];
            if (tail == kNil) {
                inst_batch_head_[inst] = req;
            } else {
                req_next_[tail] = req;
            }
            req_next_[req] = kNil;
            tail = req;
            ++batched;
        }
        inst_stepping_[inst] = 1;
        inst_step_is_prefill_[inst] = 1;
        setLoad(inst, load_before, load_before - batched);
        const f64 step = profile_.prefill(tokens);
        inst_step_timer_[inst] = engine_.scheduleAfter(
            step, Ev{Ev::Kind::kStepDone, 0, inst});
        return;
    }
    if (inst_running_count_[inst] > 0) {
        // Decode step over all running sequences.
        inst_stepping_[inst] = 1;
        inst_step_is_prefill_[inst] = 0;
        const u32 bs = inst_running_count_[inst];
        f64 step = profile_.decodeStep(bs);
        if (profile_.deferred_capture) {
            // §2.4: the first step at a new batch-size bucket pays
            // the lazy warm-up + capture.
            const std::size_t bucket = profile_.bucketIndex(bs);
            u64 &word =
                inst_warmed_[static_cast<std::size_t>(inst) *
                                 warmed_stride_ +
                             bucket / 64];
            const u64 bit = 1ull << (bucket % 64);
            if ((word & bit) == 0) {
                word |= bit;
                step += profile_.capturePenalty(bs);
            }
        }
        inst_step_timer_[inst] = engine_.scheduleAfter(
            step, Ev{Ev::Kind::kStepDone, 0, inst});
        return;
    }
    armIdleTimeout(inst);
}

void
Scheduler::finishStep(u32 inst)
{
    inst_stepping_[inst] = 0;
    // Pull any globally waiting work before the next step; the
    // dispatch may itself restart this instance's step loop.
    dispatch();
    if (inst_state_[inst] != kLive || inst_stepping_[inst] != 0) {
        return;
    }
    if (instLoad(inst) > 0) {
        startStep(inst);
    } else {
        armIdleTimeout(inst);
    }
}

void
Scheduler::armIdleTimeout(u32 inst)
{
    if (inst_hot_spare_[inst] != 0) {
        return; // spares are provisioned for the whole run
    }
    engine_.cancel(inst_idle_timer_[inst]);
    inst_idle_since_[inst] = engine_.now();
    const f64 timeout = options_.policy == SchedulerPolicy::kKeepAlive &&
                                options_.keep_alive_idle_sec >= 0
                            ? options_.keep_alive_idle_sec
                            : options_.idle_timeout_sec;
    inst_idle_timer_[inst] = engine_.scheduleAfter(
        timeout, Ev{Ev::Kind::kIdleReclaim, 0, inst});
}

// ---- chaos + SLO (DESIGN.md §16) -----------------------------------------

void
Scheduler::traceInstant(std::string_view name, std::string_view category)
{
    if (trace_ != nullptr) {
        TraceEvent ev;
        ev.name = name;
        ev.category = category;
        ev.phase = TraceEvent::Phase::kInstant;
        ev.start_ns = units::secToNs(engine_.now());
        trace_->append(std::move(ev));
    }
}

void
Scheduler::onChaosEvent(u32 idx)
{
    const ChaosEvent &ce = chaos_sched_[idx];
    const f64 now = engine_.now();
    switch (ce.kind) {
    case ChaosEvent::Kind::kNodeCrash: {
        // Victim = draw over the currently-up nodes; a fully-down
        // cluster absorbs the event.
        u32 up = 0;
        for (const u8 d : node_down_) {
            up += d == 0 ? 1 : 0;
        }
        if (up == 0) {
            return;
        }
        u32 k = static_cast<u32>(ce.draw % up);
        for (u32 n = 0; n < node_down_.size(); ++n) {
            if (node_down_[n] != 0) {
                continue;
            }
            if (k == 0) {
                crashNode(n, std::max(ce.end_sec, now));
                break;
            }
            --k;
        }
        dispatch();
        break;
    }
    case ChaosEvent::Kind::kInstanceCrash: {
        if (live_count_ == 0) {
            return; // nothing serving; the crash is a no-op
        }
        u64 k = ce.draw % live_count_;
        for (u32 i = 0; i < inst_state_.size(); ++i) {
            if (inst_state_[i] != kLive) {
                continue;
            }
            if (k == 0) {
                crashInstance(i);
                break;
            }
            --k;
        }
        dispatch(); // the freed GPU may relaunch for waiting demand
        break;
    }
    case ChaosEvent::Kind::kStoreOutage:
        metrics_.counter("cluster.chaos.store_outages").add(1);
        store_until_ = std::max(store_until_, ce.end_sec);
        traceLaunchSpan("chaos.store_outage", "chaos", now,
                        ce.end_sec - now);
        break;
    case ChaosEvent::Kind::kGrayWindow:
        metrics_.counter("cluster.chaos.gray_windows").add(1);
        gray_until_ = std::max(gray_until_, ce.end_sec);
        traceLaunchSpan("chaos.gray_window", "chaos", now,
                        ce.end_sec - now);
        break;
    }
}

void
Scheduler::crashNode(u32 node, f64 recover_at)
{
    metrics_.counter("cluster.chaos.node_crashes").add(1);
    traceLaunchSpan("chaos.node_crash", "chaos", engine_.now(),
                    recover_at - engine_.now());
    node_down_[node] = 1;
    down_gpus_ += node_cap_[node];
    for (u32 i = 0; i < inst_state_.size(); ++i) {
        if (inst_node_[i] == node && (inst_state_[i] == kColdStarting ||
                                      inst_state_[i] == kLive)) {
            crashInstance(i);
        }
    }
    // The node's artifact store dies with it: affinity routing must
    // re-fetch after recovery.
    const u32 slots =
        static_cast<u32>(node_models_.size() / node_free_.size());
    const std::size_t base = static_cast<std::size_t>(node) * slots;
    u64 lost = 0;
    for (u32 s = 0; s < slots; ++s) {
        if (node_models_[base + s] != kNoModel) {
            node_models_[base + s] = kNoModel;
            node_stamp_[base + s] = 0;
            ++lost;
        }
    }
    metrics_.counter("cluster.chaos.lost_residency").add(lost);
    engine_.schedule(recover_at, Ev{Ev::Kind::kNodeRecover, 0, node});
}

void
Scheduler::onNodeRecover(u32 node)
{
    metrics_.counter("cluster.chaos.node_recoveries").add(1);
    node_down_[node] = 0;
    down_gpus_ -= node_cap_[node];
    dispatch(); // recovered capacity may serve waiting demand
}

void
Scheduler::crashInstance(u32 inst)
{
    metrics_.counter("cluster.chaos.instance_crashes").add(1);
    traceInstant("chaos.instance_crash", "chaos");
    if (inst_state_[inst] == kColdStarting) {
        engine_.cancel(inst_launch_timer_[inst]);
        inst_launch_timer_[inst] = EventHandle{};
        --pending_[inst_model_[inst]];
        killInstance(inst);
        return;
    }
    by_load_[inst_model_[inst]].remove(instLoad(inst), inst);
    --live_count_;
    engine_.cancel(inst_idle_timer_[inst]);
    inst_idle_timer_[inst] = EventHandle{};
    engine_.cancel(inst_step_timer_[inst]);
    inst_step_timer_[inst] = EventHandle{};
    inst_stepping_[inst] = 0;
    // Every in-flight request — queued for prefill, mid-prefill
    // batch, or decoding — is thrown back for the retry policy.
    const u32 prefill = inst_prefill_head_[inst];
    const u32 batch = inst_batch_head_[inst];
    const u32 running = inst_running_head_[inst];
    inst_prefill_head_[inst] = kNil;
    inst_prefill_tail_[inst] = kNil;
    inst_prefill_count_[inst] = 0;
    inst_batch_head_[inst] = kNil;
    inst_running_head_[inst] = kNil;
    inst_running_tail_[inst] = kNil;
    inst_running_count_[inst] = 0;
    killInstance(inst);
    requeueChain(prefill);
    requeueChain(batch);
    requeueChain(running);
}

void
Scheduler::requeueChain(u32 head)
{
    u32 req = head;
    while (req != kNil) {
        const u32 next = req_next_[req];
        req_next_[req] = kNil;
        requeueRequest(req);
        req = next;
    }
}

void
Scheduler::requeueRequest(u32 req)
{
    metrics_.counter("cluster.chaos.requeued_requests").add(1);
    req_generated_[req] = 0; // the retry re-prefills from scratch
    ++req_retries_[req];
    if (req_retries_[req] > options_.slo.max_retries) {
        req_state_[req] = kStFailed;
        metrics_.counter("cluster.slo.failed_requests").add(1);
        traceInstant("slo.request_failed", "slo");
        markTerminal(req, RequestOutcome::kFailed);
        return;
    }
    metrics_.counter("cluster.slo.retries").add(1);
    req_state_[req] = kStRetryWait;
    const f64 backoff =
        options_.slo.retry_backoff_sec *
        static_cast<f64>(1u << std::min<u32>(req_retries_[req] - 1, 20));
    traceInstant("slo.requeue", "slo");
    engine_.scheduleAfter(backoff, Ev{Ev::Kind::kRetryAdmit, 0, req});
}

void
Scheduler::onRetryAdmit(u32 req)
{
    if (slo_on_) {
        const f64 deadline = req_deadline_[req];
        if (deadline > 0) {
            const f64 remaining =
                req_arrival_[req] + deadline - engine_.now();
            if (options_.slo.shed_on_deadline && remaining < 0) {
                shedRequest(req, /*admission=*/false);
                return;
            }
            if (options_.slo.admission_control &&
                projectedWaitSec(req_model_[req]) > remaining) {
                shedRequest(req, /*admission=*/true);
                return;
            }
            if (options_.slo.shed_on_deadline) {
                engine_.scheduleAfter(remaining,
                                      Ev{Ev::Kind::kDeadline, 0, req});
            }
        }
    }
    enqueueWaiting(req);
    dispatch();
}

void
Scheduler::onDeadline(u32 req)
{
    if (req_state_[req] != kStWaiting) {
        return; // assigned, done, or already shed — lazy no-op
    }
    // Uncount now; popWaiting unlinks the stale FIFO entry later.
    --wait_count_[req_model_[req]];
    shedRequest(req, /*admission=*/false);
}

void
Scheduler::shedRequest(u32 req, bool admission)
{
    req_state_[req] = kStShed;
    metrics_
        .counter(admission ? "cluster.slo.shed_admission"
                           : "cluster.slo.shed_deadline")
        .add(1);
    traceInstant(admission ? "slo.shed_admission" : "slo.shed_deadline",
                 "slo");
    markTerminal(req, admission ? RequestOutcome::kShedAdmission
                                : RequestOutcome::kShedDeadline);
}

f64
Scheduler::projectedWaitSec(u16 m)
{
    if (by_load_[m].bestBelow(options_.max_seqs_per_instance) != kNil) {
        return 0;
    }
    if (pending_[m] > 0) {
        return 0.5 * expectedLaunchSec();
    }
    if (busy_gpus_ < options_.num_gpus - down_gpus_ &&
        (!nodes_on_ || chooseNode(m) != kNil)) {
        return expectedLaunchSec();
    }
    return std::numeric_limits<f64>::infinity();
}

f64
Scheduler::expectedLaunchSec()
{
    f64 fetch = nodes_on_ ? options_.node_artifact_miss_sec : 0.0;
    if (chaos_on_ && fetch > 0) {
        const f64 now = engine_.now();
        if (now < store_until_) {
            if (slo_on_ && options_.slo.degrade_to_vanilla) {
                const f64 vanilla =
                    options_.vanilla_cold_start_sec > 0
                        ? options_.vanilla_cold_start_sec
                        : profile_.cold_start_sec;
                return std::min(vanilla, store_until_ - now + fetch +
                                             profile_.cold_start_sec);
            }
            fetch += store_until_ - now;
        } else if (now < gray_until_) {
            fetch *= options_.chaos->gray_slowdown;
        }
    }
    return fetch + profile_.cold_start_sec;
}

// ---- epilogue (mirrors cluster.cc's run() tail) --------------------------

TraceMetrics
Scheduler::finish()
{
    MEDUSA_CHECK(!finished_, "finish called twice");
    finished_ = true;
    if (hooked_cache_) {
        options_.artifact_cache->setTraceRecorder(nullptr);
    }
    const f64 end = engine_.now();
    TraceMetrics m;
    f64 first_arrival = req_arrival_.empty() ? 0 : req_arrival_.front();
    f64 last_finish = first_arrival;
    u64 deadline_met = 0;
    for (std::size_t i = 0; i < req_arrival_.size(); ++i) {
        if (req_finished_[i] < 0) {
            continue; // shed / failed under chaos, else unreachable
        }
        ++m.completed;
        const f64 ttft = req_first_token_[i] - req_arrival_[i];
        if (slo_on_) {
            const f64 d = req_deadline_[i];
            if (d <= 0 || ttft <= d) {
                ++deadline_met;
                metrics_.counter("cluster.slo.deadline_met").add(1);
            } else {
                metrics_.counter("cluster.slo.deadline_missed").add(1);
            }
        }
        m.ttft_sec.add(ttft);
        m.e2e_sec.add(req_finished_[i] - req_arrival_[i]);
        last_finish = std::max(last_finish, req_finished_[i]);
        if (trace_ != nullptr) {
            TraceEvent ev;
            ev.name = "request";
            ev.category = "request";
            ev.track = 1;
            ev.start_ns = units::secToNs(req_arrival_[i]);
            ev.dur_ns =
                units::secToNs(req_finished_[i] - req_arrival_[i]);
            ev.args.emplace_back(
                "ttft_sec",
                std::to_string(req_first_token_[i] - req_arrival_[i]));
            trace_->append(std::move(ev));
        }
    }
    m.makespan_sec = std::max(last_finish - first_arrival, 1e-9);
    m.achieved_qps = static_cast<f64>(m.completed) / m.makespan_sec;
    if (slo_on_) {
        m.goodput_qps = static_cast<f64>(deadline_met) / m.makespan_sec;
        metrics_.gauge("cluster.slo.goodput_qps").set(m.goodput_qps);
    }
    for (std::size_t i = 0; i < inst_state_.size(); ++i) {
        const f64 death = inst_died_at_[i] >= 0 ? inst_died_at_[i] : end;
        m.gpu_seconds += std::max(0.0, death - inst_launched_at_[i]);
    }
    // Bill idle time the keep-alive floor kept on the books.
    if (options_.policy == SchedulerPolicy::kKeepAlive) {
        for (std::size_t i = 0; i < inst_state_.size(); ++i) {
            if (inst_state_[i] != kLive || inst_hot_spare_[i] != 0 ||
                instLoad(static_cast<u32>(i)) != 0 ||
                inst_stepping_[i] != 0) {
                continue;
            }
            const f64 idle = end - inst_idle_since_[i];
            if (idle > options_.idle_timeout_sec) {
                metrics_.gauge("cluster.keep_alive_gpu_seconds")
                    .add(idle - options_.idle_timeout_sec);
            }
        }
    }
    m.launch_sec = std::move(launch_sec_);
    m.instances_launched = inst_state_.size();
    m.peak_live_instances = peak_live_;
    m.sim_events = engine_.dispatched() + arrival_events_;
    metrics_.counter("cluster.completed").add(m.completed);
    metrics_.gauge("cluster.makespan_sec").set(m.makespan_sec);
    metrics_.gauge("cluster.achieved_qps").set(m.achieved_qps);
    metrics_.gauge("cluster.gpu_seconds").set(m.gpu_seconds);
    m.metrics = metrics_.snapshot();
    m.cold_starts = m.metrics.counterValue("cluster.cold_starts");
    m.artifact_loads = m.metrics.counterValue("cluster.artifact_loads");
    m.artifact_cache_hits =
        m.metrics.counterValue("cluster.artifact_cache_hits");
    m.restore_failures =
        m.metrics.counterValue("cluster.restore_failures");
    m.fallback_cold_starts =
        m.metrics.counterValue("cluster.fallback_cold_starts");
    m.retries = m.metrics.counterValue("cluster.retries");
    m.wasted_restore_sec =
        m.metrics.gaugeValue("cluster.wasted_restore_sec");
    m.cold_pool_hits = m.metrics.counterValue("cluster.cold_pool_hits");
    m.keep_alive_gpu_seconds =
        m.metrics.gaugeValue("cluster.keep_alive_gpu_seconds");
    m.affinity_evictions =
        m.metrics.counterValue("cluster.affinity_evictions");
    m.node_warm_launches =
        m.metrics.counterValue("cluster.node_warm_launches");
    m.node_artifact_fetches =
        m.metrics.counterValue("cluster.node_artifact_fetches");
    m.node_crashes =
        m.metrics.counterValue("cluster.chaos.node_crashes");
    m.node_recoveries =
        m.metrics.counterValue("cluster.chaos.node_recoveries");
    m.instance_crashes =
        m.metrics.counterValue("cluster.chaos.instance_crashes");
    m.requeued_requests =
        m.metrics.counterValue("cluster.chaos.requeued_requests");
    m.store_outages =
        m.metrics.counterValue("cluster.chaos.store_outages");
    m.store_outage_delay_sec =
        m.metrics.gaugeValue("cluster.chaos.store_outage_delay_sec");
    m.gray_windows =
        m.metrics.counterValue("cluster.chaos.gray_windows");
    m.gray_fetches =
        m.metrics.counterValue("cluster.chaos.gray_fetches");
    m.lost_residency =
        m.metrics.counterValue("cluster.chaos.lost_residency");
    m.shed_admission =
        m.metrics.counterValue("cluster.slo.shed_admission");
    m.shed_deadline =
        m.metrics.counterValue("cluster.slo.shed_deadline");
    m.failed_requests =
        m.metrics.counterValue("cluster.slo.failed_requests");
    m.slo_retries = m.metrics.counterValue("cluster.slo.retries");
    m.degraded_launches =
        m.metrics.counterValue("cluster.slo.degraded_launches");
    m.deadline_met = m.metrics.counterValue("cluster.slo.deadline_met");
    m.deadline_missed =
        m.metrics.counterValue("cluster.slo.deadline_missed");
    if (chaos_on_ || slo_on_) {
        // The terminal-state lattice (DESIGN.md §16): every request
        // ends completed, shed, or failed — nothing is dropped on
        // the floor by a crash, an outage, or a shed race.
        MEDUSA_CHECK(m.completed + m.shed_admission + m.shed_deadline +
                             m.failed_requests ==
                         req_arrival_.size(),
                     "request conservation violated");
    }
    if (options_.pipeline.trace != nullptr) {
        options_.pipeline.trace->appendAll(rec_.events());
        options_.pipeline.trace->setTrackName(0, "cluster");
        options_.pipeline.trace->setTrackName(1, "requests");
    }
    if (options_.pipeline.metrics != nullptr) {
        options_.pipeline.metrics->mergeFrom(m.metrics);
    }
    return m;
}

} // namespace medusa::serve
