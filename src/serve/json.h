/**
 * @file
 * A minimal JSON value type for the serving front end: tolerant
 * recursive-descent parsing of client request bodies (objects, arrays,
 * strings with \uXXXX escapes, numbers, bools, null) and compact
 * serialization for responses and SSE chunks.
 *
 * Deliberately tiny — no DOM mutation beyond building, no number
 * round-trip guarantees beyond what responses need. Object member
 * order is preserved (insertion order), which keeps serialized
 * responses deterministic for the smoke tests.
 */

#ifndef MEDUSA_SERVE_JSON_H
#define MEDUSA_SERVE_JSON_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace medusa::serve {

/** One JSON value (null / bool / number / string / array / object). */
class Json
{
  public:
    enum class Type : u8
    {
        kNull = 0,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Json() = default;

    /** Parse @p text; trailing non-whitespace is an error. */
    static StatusOr<Json> parse(std::string_view text);

    static Json null() { return Json(); }
    static Json boolean(bool v);
    static Json number(f64 v);
    static Json string(std::string v);
    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }
    bool isBool() const { return type_ == Type::kBool; }
    bool isNumber() const { return type_ == Type::kNumber; }
    bool isString() const { return type_ == Type::kString; }
    bool isArray() const { return type_ == Type::kArray; }
    bool isObject() const { return type_ == Type::kObject; }

    /** Value accessors; call only after checking the type. */
    bool asBool() const { return bool_; }
    f64 asNumber() const { return num_; }
    const std::string &asString() const { return str_; }
    const std::vector<Json> &items() const { return arr_; }
    const std::vector<std::pair<std::string, Json>> &
    members() const
    {
        return obj_;
    }

    /** Object member lookup; null when absent or not an object. */
    const Json *find(std::string_view key) const;

    /** Append to an array value. */
    Json &push(Json v);
    /** Set an object member (appends; keys are not deduplicated). */
    Json &set(std::string key, Json v);

    /** Compact serialization (no whitespace). */
    std::string dump() const;
    void dumpTo(std::string &out) const;

  private:
    Type type_ = Type::kNull;
    bool bool_ = false;
    f64 num_ = 0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/** Append @p text to @p out as a quoted, escaped JSON string. */
void appendJsonString(std::string &out, std::string_view text);

} // namespace medusa::serve

#endif // MEDUSA_SERVE_JSON_H
