#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace medusa::serve {

namespace {

std::string
toLower(std::string_view s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
        s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                          s.back() == '\r')) {
        s.remove_suffix(1);
    }
    return s;
}

} // namespace

const std::string *
HttpRequest::header(std::string_view name) const
{
    for (const auto &[k, v] : headers) {
        if (k == name) {
            return &v;
        }
    }
    return nullptr;
}

Status
HttpParser::feed(std::string_view bytes)
{
    buf_.append(bytes);
    if (state_ == State::kHeaders) {
        MEDUSA_RETURN_IF_ERROR(parseHeaderBlock());
    }
    if (state_ == State::kBody) {
        MEDUSA_RETURN_IF_ERROR(tryFinishBody());
    }
    return Status::ok();
}

Status
HttpParser::parseHeaderBlock()
{
    const std::size_t end = buf_.find("\r\n\r\n");
    if (end == std::string::npos) {
        if (buf_.size() > kMaxHeaderBytes) {
            return invalidArgument("http: header block too large");
        }
        return Status::ok();
    }

    std::string_view head(buf_.data(), end);
    // Request line: METHOD SP TARGET SP VERSION.
    const std::size_t line_end = head.find("\r\n");
    const std::string_view line =
        head.substr(0, line_end == std::string_view::npos ? head.size()
                                                          : line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        return invalidArgument("http: malformed request line");
    }
    req_.method = std::string(line.substr(0, sp1));
    req_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
    const std::string_view version = line.substr(sp2 + 1);
    if (version.substr(0, 7) != "HTTP/1.") {
        return invalidArgument("http: unsupported protocol version");
    }

    std::size_t pos =
        line_end == std::string_view::npos ? head.size() : line_end + 2;
    while (pos < head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string_view::npos) {
            eol = head.size();
        }
        const std::string_view hline = head.substr(pos, eol - pos);
        const std::size_t colon = hline.find(':');
        if (colon == std::string_view::npos) {
            return invalidArgument("http: malformed header line");
        }
        req_.headers.emplace_back(
            toLower(trim(hline.substr(0, colon))),
            std::string(trim(hline.substr(colon + 1))));
        pos = eol + 2;
    }

    body_needed_ = 0;
    if (const std::string *cl = req_.header("content-length")) {
        char *endp = nullptr;
        const unsigned long long n =
            std::strtoull(cl->c_str(), &endp, 10);
        if (endp != cl->c_str() + cl->size() || n > kMaxBodyBytes) {
            return invalidArgument("http: bad content-length");
        }
        body_needed_ = static_cast<std::size_t>(n);
    } else if (req_.header("transfer-encoding") != nullptr) {
        return invalidArgument(
            "http: chunked request bodies are not supported");
    }

    buf_.erase(0, end + 4);
    state_ = State::kBody;
    return Status::ok();
}

Status
HttpParser::tryFinishBody()
{
    if (buf_.size() < body_needed_) {
        return Status::ok();
    }
    req_.body = buf_.substr(0, body_needed_);
    buf_.erase(0, body_needed_);
    state_ = State::kDone;
    return Status::ok();
}

void
HttpParser::reset()
{
    req_ = HttpRequest{};
    body_needed_ = 0;
    state_ = State::kHeaders;
    // buf_ keeps any pipelined bytes; re-parse them immediately.
    if (!buf_.empty()) {
        (void)feed("");
    }
}

HttpListener::~HttpListener() { close(); }

Status
HttpListener::bind(const std::string &host, u16 port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        return internalError("socket() failed: " +
                             std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return invalidArgument("bad listen address: " + host);
    }
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        return internalError("bind(" + host + ") failed: " +
                             std::string(std::strerror(errno)));
    }
    if (::listen(fd_, 64) != 0) {
        return internalError("listen() failed: " +
                             std::string(std::strerror(errno)));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0) {
        return internalError("getsockname() failed");
    }
    port_ = ntohs(bound.sin_port);
    return Status::ok();
}

int
HttpListener::acceptFd(int timeout_ms)
{
    if (fd_ < 0) {
        return -2;
    }
    pollfd p{};
    p.fd = fd_;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, timeout_ms);
    if (r <= 0) {
        return -1;
    }
    const int c = ::accept(fd_, nullptr, nullptr);
    if (c < 0) {
        return fd_ < 0 ? -2 : -1;
    }
    const int one = 1;
    ::setsockopt(c, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return c;
}

void
HttpListener::close()
{
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
}

bool
writeAll(int fd, std::string_view data)
{
    while (!data.empty()) {
        const auto n =
            ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) {
                continue;
            }
            return false;
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

i64
readInto(int fd, std::string &buf, std::size_t max_chunk)
{
    const std::size_t old = buf.size();
    buf.resize(old + max_chunk);
    const auto n = ::recv(fd, buf.data() + old, max_chunk, 0);
    buf.resize(old + (n > 0 ? static_cast<std::size_t>(n) : 0));
    if (n < 0 && errno == EINTR) {
        return readInto(fd, buf, max_chunk);
    }
    return n;
}

const char *
httpStatusText(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 429:
        return "Too Many Requests";
    case 500:
        return "Internal Server Error";
    case 503:
        return "Service Unavailable";
    default:
        return "Unknown";
    }
}

std::string
httpResponse(int status, std::string_view content_type,
             std::string_view body)
{
    std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                      httpStatusText(status) + "\r\n";
    out += "Content-Type: ";
    out += content_type;
    out += "\r\nContent-Length: " + std::to_string(body.size());
    out += "\r\nConnection: keep-alive\r\n\r\n";
    out += body;
    return out;
}

std::string
sseResponseHead()
{
    return "HTTP/1.1 200 OK\r\n"
           "Content-Type: text/event-stream\r\n"
           "Cache-Control: no-cache\r\n"
           "Connection: close\r\n\r\n";
}

std::string
sseEvent(std::string_view payload)
{
    std::string out = "data: ";
    out += payload;
    out += "\n\n";
    return out;
}

} // namespace medusa::serve
