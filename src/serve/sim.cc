/**
 * @file
 * Sim-mode driver: the public simulateCluster() facade and the fast
 * engine-variant entry, both expressed over serve::Scheduler. The
 * arrival merge reproduces the historical cluster_fast.cc runLoop
 * exactly — the sorted trace is an external cursor whose entries
 * (conceptually scheduled before any dynamic event) win ties at equal
 * times — so TraceMetrics stay bit-identical to the pre-extraction
 * simulator (cluster_equiv_test pins this against the legacy loop).
 */

#include "serve/scheduler.h"
#include "serverless/cluster_internal.h"

namespace medusa::serverless {

namespace detail {

TraceMetrics
simulateClusterFast(const ClusterOptions &options,
                    const ServingProfile &profile,
                    const std::vector<workload::Request> &trace)
{
    ClusterOptions opts = options;
    opts.profile = &profile;
    const f64 horizon = trace.empty() ? 0 : trace.back().arrival_sec;
    serve::Scheduler sched(opts, /*hooks=*/nullptr, horizon);
    std::size_t next_arrival = 0;
    for (;;) {
        if (next_arrival < trace.size() &&
            (sched.idle() || trace[next_arrival].arrival_sec <=
                                 sched.peekTime())) {
            sched.advanceTo(trace[next_arrival].arrival_sec);
            sched.submit(trace[next_arrival]);
            ++next_arrival;
            continue;
        }
        if (sched.idle()) {
            break;
        }
        sched.step();
    }
    return sched.finish();
}

} // namespace detail

TraceMetrics
simulateCluster(const ClusterOptions &options,
                const std::vector<workload::Request> &trace)
{
    MEDUSA_CHECK(options.profile != nullptr,
                 "ClusterOptions::profile must be set");
    const ServingProfile &profile = *options.profile;
    if (options.engine == SimEngine::kLegacy) {
        MEDUSA_CHECK(options.policy == SchedulerPolicy::kBaseline &&
                         options.num_models <= 1,
                     "the legacy event loop supports neither scheduler "
                     "policies nor multi-model traces");
        MEDUSA_CHECK((options.chaos == nullptr ||
                      !options.chaos->enabled()) &&
                         !options.slo.enabled(),
                     "the legacy event loop supports neither chaos "
                     "plans nor SLO policies");
        return detail::simulateClusterLegacy(options, profile, trace);
    }
    if (options.chaos == nullptr) {
        if (const ChaosPlan *env = envChaosPlan(); env != nullptr) {
            ClusterOptions armed = options;
            armed.chaos = env;
            return detail::simulateClusterFast(armed, profile, trace);
        }
    }
    return detail::simulateClusterFast(options, profile, trace);
}

} // namespace medusa::serverless
