#include "serve/openai.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace medusa::serve {

namespace {

/** splitmix64 — the repo's standard cheap deterministic mixer. */
u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

constexpr std::array<std::string_view, 32> kWords = {
    "the",    "model",  "stream",  "graph",   "tensor", "cache",
    "layer",  "token",  "batch",   "kernel",  "weight", "memory",
    "device", "host",   "restore", "capture", "replay", "prefill",
    "decode", "launch", "cold",    "warm",    "fast",   "start",
    "state",  "page",   "block",   "queue",   "node",   "pool",
    "shard",  "rank",
};

StatusOr<u32>
positiveIntField(const Json &body, std::string_view key, u32 fallback,
                 u32 max)
{
    const Json *v = body.find(key);
    if (v == nullptr || v->isNull()) {
        return fallback;
    }
    if (!v->isNumber() || v->asNumber() < 1 ||
        v->asNumber() != std::floor(v->asNumber())) {
        return invalidArgument(std::string(key) +
                               " must be a positive integer");
    }
    if (v->asNumber() > static_cast<f64>(max)) {
        return invalidArgument(std::string(key) + " exceeds the limit " +
                               std::to_string(max));
    }
    return static_cast<u32>(v->asNumber());
}

} // namespace

u32
approxTokenCount(std::string_view text)
{
    return static_cast<u32>(
        std::max<std::size_t>(1, (text.size() + 3) / 4));
}

std::string
tokenText(u64 seed, u32 index)
{
    const u64 h = mix64(seed * 0x100000001b3ull + index);
    std::string out(kWords[h & 31]);
    // Sentence-ish rhythm: a period roughly every 8th token.
    if ((h >> 8 & 7) == 0) {
        out.push_back('.');
    }
    return index == 0 ? out : " " + out;
}

std::string
completionId(bool chat, u64 seed)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(mix64(seed ^ 0x6d64)));
    return std::string(chat ? "chatcmpl-" : "cmpl-") + buf;
}

StatusOr<CompletionCall>
parseCompletionCall(const Json &body, bool chat, const ApiLimits &limits)
{
    if (!body.isObject()) {
        return invalidArgument("request body must be a JSON object");
    }
    CompletionCall call;
    call.chat = chat;

    const Json *model = body.find("model");
    if (model == nullptr || !model->isString() ||
        model->asString().empty()) {
        return invalidArgument("'model' must be a non-empty string");
    }
    call.model = model->asString();

    if (chat) {
        const Json *messages = body.find("messages");
        if (messages == nullptr || !messages->isArray() ||
            messages->items().empty()) {
            return invalidArgument(
                "'messages' must be a non-empty array");
        }
        for (const Json &m : messages->items()) {
            if (!m.isObject()) {
                return invalidArgument("each message must be an object");
            }
            const Json *role = m.find("role");
            const Json *content = m.find("content");
            if (role == nullptr || !role->isString()) {
                return invalidArgument(
                    "each message needs a string 'role'");
            }
            if (content == nullptr || !content->isString()) {
                return invalidArgument(
                    "each message needs string 'content'");
            }
            if (!call.prompt.empty()) {
                call.prompt.push_back('\n');
            }
            call.prompt += role->asString();
            call.prompt += ": ";
            call.prompt += content->asString();
        }
    } else {
        const Json *prompt = body.find("prompt");
        if (prompt == nullptr || !prompt->isString() ||
            prompt->asString().empty()) {
            return invalidArgument("'prompt' must be a non-empty string");
        }
        call.prompt = prompt->asString();
    }

    call.prompt_tokens = approxTokenCount(call.prompt);
    if (call.prompt_tokens > limits.max_prompt_tokens) {
        return invalidArgument(
            "prompt is longer than the " +
            std::to_string(limits.max_prompt_tokens) + "-token limit");
    }

    MEDUSA_ASSIGN_OR_RETURN(
        call.max_tokens,
        positiveIntField(body, "max_tokens", limits.default_max_tokens,
                         limits.max_output_tokens));

    if (const Json *stream = body.find("stream"); stream != nullptr) {
        if (!stream->isBool()) {
            return invalidArgument("'stream' must be a boolean");
        }
        call.stream = stream->asBool();
    }
    if (const Json *n = body.find("n");
        n != nullptr && !n->isNull() &&
        (!n->isNumber() || n->asNumber() != 1)) {
        return invalidArgument("'n' != 1 is not supported");
    }
    return call;
}

std::string
completionChunkJson(const CompletionCall &call, std::string_view id,
                    std::string_view token, bool first)
{
    Json choice = Json::object();
    choice.set("index", Json::number(0));
    if (call.chat) {
        Json delta = Json::object();
        if (first) {
            delta.set("role", Json::string("assistant"));
        }
        delta.set("content", Json::string(std::string(token)));
        choice.set("delta", std::move(delta));
    } else {
        choice.set("text", Json::string(std::string(token)));
    }
    choice.set("finish_reason", Json::null());

    Json chunk = Json::object();
    chunk.set("id", Json::string(std::string(id)));
    chunk.set("object", Json::string(call.chat
                                         ? "chat.completion.chunk"
                                         : "text_completion"));
    chunk.set("model", Json::string(call.model));
    chunk.set("choices", Json::array().push(std::move(choice)));
    return chunk.dump();
}

std::string
completionDoneJson(const CompletionCall &call, std::string_view id,
                   std::string_view finish_reason)
{
    Json choice = Json::object();
    choice.set("index", Json::number(0));
    if (call.chat) {
        choice.set("delta", Json::object());
    } else {
        choice.set("text", Json::string(""));
    }
    choice.set("finish_reason",
               Json::string(std::string(finish_reason)));

    Json chunk = Json::object();
    chunk.set("id", Json::string(std::string(id)));
    chunk.set("object", Json::string(call.chat
                                         ? "chat.completion.chunk"
                                         : "text_completion"));
    chunk.set("model", Json::string(call.model));
    chunk.set("choices", Json::array().push(std::move(choice)));
    return chunk.dump();
}

std::string
completionResponseJson(const CompletionCall &call, std::string_view id,
                       std::string_view text, u32 completion_tokens,
                       std::string_view finish_reason)
{
    Json choice = Json::object();
    choice.set("index", Json::number(0));
    if (call.chat) {
        Json message = Json::object();
        message.set("role", Json::string("assistant"));
        message.set("content", Json::string(std::string(text)));
        choice.set("message", std::move(message));
    } else {
        choice.set("text", Json::string(std::string(text)));
    }
    choice.set("finish_reason",
               Json::string(std::string(finish_reason)));

    Json usage = Json::object();
    usage.set("prompt_tokens", Json::number(call.prompt_tokens));
    usage.set("completion_tokens", Json::number(completion_tokens));
    usage.set("total_tokens",
              Json::number(call.prompt_tokens + completion_tokens));

    Json resp = Json::object();
    resp.set("id", Json::string(std::string(id)));
    resp.set("object", Json::string(call.chat ? "chat.completion"
                                              : "text_completion"));
    resp.set("model", Json::string(call.model));
    resp.set("choices", Json::array().push(std::move(choice)));
    resp.set("usage", std::move(usage));
    return resp.dump();
}

std::string
errorJson(int status, std::string_view type, std::string_view message)
{
    Json err = Json::object();
    err.set("message", Json::string(std::string(message)));
    err.set("type", Json::string(std::string(type)));
    err.set("code", Json::number(status));
    Json body = Json::object();
    body.set("error", std::move(err));
    return body.dump();
}

} // namespace medusa::serve
