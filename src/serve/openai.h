/**
 * @file
 * OpenAI-compatible API surface: request parsing / validation for
 * `/v1/completions` and `/v1/chat/completions`, the JSON bodies of
 * streaming chunks and complete responses, and the deterministic
 * placeholder token text the simulated engine "generates".
 *
 * The functional LLM stack produces token *timings*, not language, so
 * the served text is a deterministic pseudo-random word stream seeded
 * by the request id — stable across runs, which the smoke tests and
 * serve_test rely on.
 */

#ifndef MEDUSA_SERVE_OPENAI_H
#define MEDUSA_SERVE_OPENAI_H

#include <string>
#include <string_view>

#include "serve/json.h"

namespace medusa::serve {

/** Validation limits the server imposes on client requests. */
struct ApiLimits
{
    u32 max_prompt_tokens = 32768;
    u32 max_output_tokens = 4096;
    /** max_tokens when the client omits the field. */
    u32 default_max_tokens = 16;
};

/** One validated completion / chat-completion call. */
struct CompletionCall
{
    /** True for /v1/chat/completions. */
    bool chat = false;
    bool stream = false;
    std::string model;
    /** Flattened prompt (chat: newline-joined message contents). */
    std::string prompt;
    /** Heuristic token count of the prompt (see approxTokenCount). */
    u32 prompt_tokens = 0;
    u32 max_tokens = 0;
};

/**
 * Parse and validate a request body. @p chat selects the
 * chat-completions schema (messages[] instead of prompt). Returns
 * kInvalidArgument with a client-presentable message on bad input.
 */
StatusOr<CompletionCall> parseCompletionCall(const Json &body, bool chat,
                                             const ApiLimits &limits);

/** ~4 bytes per token, at least 1 (the paper's profiling heuristic). */
u32 approxTokenCount(std::string_view text);

/** Deterministic word for token @p index of request @p seed. */
std::string tokenText(u64 seed, u32 index);

/** "cmpl-..." / "chatcmpl-..." id derived from @p seed. */
std::string completionId(bool chat, u64 seed);

/** One streaming SSE chunk body (OpenAI delta framing). */
std::string completionChunkJson(const CompletionCall &call,
                                std::string_view id,
                                std::string_view token, bool first);

/** The terminal streaming chunk carrying finish_reason. */
std::string completionDoneJson(const CompletionCall &call,
                               std::string_view id,
                               std::string_view finish_reason);

/** A complete non-streaming response body. */
std::string completionResponseJson(const CompletionCall &call,
                                   std::string_view id,
                                   std::string_view text,
                                   u32 completion_tokens,
                                   std::string_view finish_reason);

/** OpenAI-style error envelope: {"error":{message,type,code}}. */
std::string errorJson(int status, std::string_view type,
                      std::string_view message);

} // namespace medusa::serve

#endif // MEDUSA_SERVE_OPENAI_H
