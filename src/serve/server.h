/**
 * @file
 * The serving control plane (DESIGN.md §17): an OpenAI-style HTTP
 * front end driven by the same serve::Scheduler that powers the
 * cluster simulator.
 *
 * Threading model — three kinds of threads share one Scheduler under
 * a single engine mutex:
 *
 *  - the **engine thread** advances virtual time: free-running when
 *    time_scale == 0 (every pending event dispatches as soon as it
 *    exists — completions stream out at compute speed), or paced
 *    against the wall clock (virtual = wall × time_scale) otherwise;
 *  - **connection threads** (one per accepted socket) parse HTTP,
 *    validate the OpenAI call, submit() at the current virtual time
 *    and then block on their request's token stream;
 *  - scheduler **hooks** fire on whichever thread is stepping the
 *    engine and publish tokens / terminal outcomes into per-request
 *    streams (dedup by high-water token count — a crash-requeued
 *    request re-emits from 1).
 *
 * Graceful drain: requestStop() stops accepting, in-flight requests
 * run to completion (bounded by drain_timeout_sec), then stop()
 * drains the event loop and returns the run's TraceMetrics — the same
 * struct a simulation returns, so serve-mode runs drop into the
 * existing analysis tooling.
 */

#ifndef MEDUSA_SERVE_SERVER_H
#define MEDUSA_SERVE_SERVER_H

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/http.h"
#include "serve/openai.h"
#include "serve/scheduler.h"

namespace medusa::serve {

/**
 * Serve-mode configuration. The request-path knobs live in `cluster`
 * — the SAME ClusterOptions the simulator consumes (one options
 * surface, no duplicated fields); serve adds only the front-end
 * plumbing around it.
 */
struct ServeOptions
{
    /** Scheduler configuration; cluster.profile must be non-null. */
    serverless::ClusterOptions cluster;

    std::string host = "127.0.0.1";
    /** 0 = pick an ephemeral port (see Server::port()). */
    u16 port = 0;
    /**
     * Virtual seconds per wall second. 0 free-runs the virtual clock:
     * every pending event dispatches immediately, so responses return
     * at compute speed (smoke tests, benches). 1.0 serves in real
     * time.
     */
    f64 time_scale = 0;
    /** Wall-clock bound on the graceful drain in stop(). */
    f64 drain_timeout_sec = 30;
    /** Request validation limits. */
    ApiLimits limits;
    /**
     * Served model names; index == ClusterOptions model_id. Requests
     * naming anything else are rejected with 404. Empty = accept any
     * name as model 0.
     */
    std::vector<std::string> model_names;
    /** Chaos horizon handed to the Scheduler (plans without one). */
    f64 chaos_horizon_sec = 0;
};

/** The HTTP server. Construct, start(), eventually stop(). */
class Server
{
  public:
    explicit Server(ServeOptions options);
    ~Server();
    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen and spawn the engine + acceptor threads. */
    Status start();

    /** The bound port (valid after start()). */
    u16 port() const { return listener_.port(); }

    /** Submitted requests not yet terminal. */
    std::size_t inFlight();

    /** Stop accepting new requests (first half of graceful drain). */
    void requestStop();

    /**
     * Graceful shutdown: requestStop(), wait for in-flight requests
     * (up to drain_timeout_sec), drain the event loop and finish()
     * the scheduler. Returns the run's TraceMetrics. Idempotent after
     * the first call.
     */
    serverless::TraceMetrics stop();

    /** Front-end (`server.*`) counters; scheduler metrics come out of
     *  stop()'s TraceMetrics / the cluster pipeline sinks. */
    MetricsSnapshot metricsSnapshot() const;

  private:
    /** Per-request token stream filled by hooks, drained by one
     *  connection thread. */
    struct RequestStream
    {
        std::mutex mu;
        std::condition_variable cv;
        /** Token texts not yet taken by the connection thread. */
        std::deque<std::string> pending;
        /** Highest token count seen (dedup across crash replays). */
        u32 high_water = 0;
        bool done = false;
        RequestOutcome outcome = RequestOutcome::kCompleted;
        f64 arrival_vt = 0;
        f64 first_token_vt = -1;
        f64 done_vt = 0;
    };

    void engineLoop();
    void acceptLoop();
    void handleConnection(int fd);
    /** One parsed request → full response bytes written to @p fd.
     *  Returns false when the connection must close. */
    bool handleRequest(int fd, const HttpRequest &req);
    bool handleCompletion(int fd, const HttpRequest &req, bool chat);
    bool streamCompletion(int fd, const CompletionCall &call, u32 req_id,
                          const std::shared_ptr<RequestStream> &stream);
    bool respondOnce(int fd, const CompletionCall &call, u32 req_id,
                     const std::shared_ptr<RequestStream> &stream);

    // Hook bodies (run with engine_mu_ held by the stepping thread).
    void onToken(u32 req, u32 count, f64 t_sec);
    void onDone(u32 req, RequestOutcome outcome, f64 t_sec);

    std::shared_ptr<RequestStream> findStream(u32 req);
    void eraseStream(u32 req);

    /** Wall seconds since start(). */
    f64 wallSec() const;

    ServeOptions options_;
    RequestHooks hooks_;
    MetricsRegistry metrics_;
    /** server.request spans, exported to cluster.pipeline.trace. */
    TraceRecorder spans_;

    mutable std::mutex engine_mu_;
    std::condition_variable engine_cv_;
    std::unique_ptr<Scheduler> sched_;
    bool draining_ = false;
    bool engine_stop_ = false;

    std::mutex streams_mu_;
    std::unordered_map<u32, std::shared_ptr<RequestStream>> streams_;
    u64 active_peak_ = 0;

    HttpListener listener_;
    std::thread engine_thread_;
    std::thread accept_thread_;
    std::mutex conns_mu_;
    std::vector<std::thread> conns_;

    std::chrono::steady_clock::time_point wall0_;
    bool started_ = false;
    bool stopped_ = false;
    serverless::TraceMetrics final_metrics_;
};

} // namespace medusa::serve

#endif // MEDUSA_SERVE_SERVER_H
