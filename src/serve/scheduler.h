/**
 * @file
 * The cluster scheduling core (DESIGN.md §15–§17), extracted out of
 * the simulator so one implementation drives both worlds:
 *
 *  - **sim mode** — src/serve/sim.cc merges a pre-recorded trace into
 *    the event loop as an external sorted cursor and calls finish();
 *    bit-identical TraceMetrics to the historical cluster_fast.cc
 *    (pinned by cluster_equiv_test);
 *  - **serve mode** — serve::Server submits live HTTP requests with
 *    submit(), paces the engine against a wall→virtual clock with
 *    pumpUntil(), and receives per-token callbacks through
 *    RequestHooks for SSE streaming.
 *
 * Everything §7.5 is here: the demand autoscaler, continuous-batching
 * step model over the captured-graph batch sizes, keep-alive /
 * artifact-affinity placement policies, admission control via
 * projectedWaitSec, deadline shedding, bounded crash retry, and the
 * chaos layer. The implementation is the zero-allocation
 * EventEngine + struct-of-arrays state machine described in the old
 * cluster_fast.cc header comment; only the driving loop moved out.
 *
 * Not thread-safe: serve mode serializes all calls (including hook
 * re-entry) under the server's engine mutex.
 */

#ifndef MEDUSA_SERVE_SCHEDULER_H
#define MEDUSA_SERVE_SCHEDULER_H

#include <functional>
#include <vector>

#include "serverless/cluster.h"
#include "serverless/event_engine.h"

namespace medusa::serve {

/** Terminal state of a submitted request (DESIGN.md §16 lattice). */
enum class RequestOutcome : u8
{
    kCompleted = 0,
    /** Shed at (re-)admission: projected wait exceeded the deadline. */
    kShedAdmission,
    /** Shed in the queue when its TTFT deadline passed. */
    kShedDeadline,
    /** Crash-retry budget exhausted. */
    kFailed,
};

/**
 * Streaming callbacks for serve mode; every field may be empty. Null
 * hooks (sim mode) cost nothing and change nothing — the scheduler's
 * observable state is identical with or without them.
 *
 * A crash-requeued request re-prefills and re-emits its tokens;
 * on_token's @p count (1-based) restarts from 1, so a streaming
 * consumer must dedup by keeping the high-water count per request.
 */
struct RequestHooks
{
    /** First token of @p req emitted at virtual time @p t_sec (TTFT). */
    std::function<void(u32 req, f64 t_sec)> on_first_token;
    /** Token number @p count (1-based) of @p req emitted. */
    std::function<void(u32 req, u32 count, f64 t_sec)> on_token;
    /** @p req reached a terminal state. */
    std::function<void(u32 req, RequestOutcome outcome, f64 t_sec)>
        on_done;
};

/**
 * The scheduler itself. Construct, submit() requests in
 * non-decreasing virtual time, drive the event loop (step /
 * pumpUntil / drain), then finish() exactly once for the run's
 * TraceMetrics. options.profile must be non-null and every referenced
 * pointer (profile, chaos, artifact_cache) must outlive the instance.
 */
class Scheduler
{
  public:
    /**
     * @param chaos_horizon_sec horizon for a ChaosPlan whose own
     *        horizon_sec is unset (sim mode passes the trace's last
     *        arrival; serve mode its configured run horizon).
     */
    explicit Scheduler(const serverless::ClusterOptions &options,
                       const RequestHooks *hooks = nullptr,
                       f64 chaos_horizon_sec = 0);

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Admit a request at the current virtual time (advanceTo /
     * pumpUntil there first). Returns the request id hooks report.
     */
    u32 submit(const workload::Request &r);

    /** Current virtual time. */
    f64 now() const { return engine_.now(); }

    /** True when no events are pending. */
    bool idle() const { return engine_.empty(); }

    /** Time of the earliest pending event; engine must not be idle. */
    f64 peekTime() const { return engine_.peekTime(); }

    /** Dispatch the single earliest pending event. */
    void step();

    /** Advance the clock with no pending event due before @p t_sec. */
    void advanceTo(f64 t_sec);

    /** Dispatch every event due at or before @p t_sec, then advance
     *  the clock to @p t_sec (serve mode's pacing primitive). */
    void pumpUntil(f64 t_sec);

    /** Dispatch until no events remain (graceful drain). */
    void drain();

    /** Requests submitted so far. */
    std::size_t submitted() const { return req_arrival_.size(); }

    /** Submitted requests not yet in a terminal state. */
    std::size_t
    inFlight() const
    {
        return req_arrival_.size() - terminal_count_;
    }

    /**
     * Close the run: compute TraceMetrics over every submitted
     * request, bill keep-alive idle time, export spans/metrics to
     * options.pipeline, and hard-check request conservation. Call
     * exactly once, after drain() (or an equivalent empty engine).
     */
    serverless::TraceMetrics finish();

  private:
    static constexpr u32 kNil = 0xffffffffu;
    static constexpr u16 kNoModel = 0xffffu;

    /** The typed event payload (old cluster_fast.cc Ev). 8 bytes. */
    struct Ev
    {
        enum class Kind : u8
        {
            kArrival = 0,
            kStepDone,
            kLaunchDone,
            kIdleReclaim,
            /** inst = index into the pre-generated chaos schedule. */
            kChaos,
            /** inst = node id whose crash window closes. */
            kNodeRecover,
            /** inst = request id; lazy TTFT-deadline check. */
            kDeadline,
            /** inst = request id; re-enqueue after crash backoff. */
            kRetryAdmit,
        };

        Kind kind = Kind::kArrival;
        /** kLaunchDone: 1 = instance comes alive, 0 = it dies. */
        u8 flag = 0;
        u32 inst = 0;
    };

    /**
     * Per-model dispatch index: for each load value, a bitset of the
     * live instance ids currently at that load. bestBelow(cap)
     * reproduces the legacy scan "max load among live instances with
     * load < cap, ties to the lowest id" in O(cap + instances/64).
     */
    class LoadIndex
    {
      public:
        void init(u32 num_loads);
        void add(u32 load, u32 inst);
        void remove(u32 load, u32 inst);
        void move(u32 from, u32 to, u32 inst);
        /** Highest non-empty load < cap, lowest id; kNil if none. */
        u32 bestBelow(u32 cap) const;

      private:
        void grow();

        u32 stride_ = 1;
        std::vector<u32> counts_;
        std::vector<u64> words_;
    };

    using Engine = serverless::EventEngine<Ev>;

    // ---- event loop plumbing ----
    void dispatchEvent(const Ev &ev);

    // ---- request/instance bookkeeping ----
    u32 instLoad(u32 inst) const;
    void setLoad(u32 inst, u32 old_load, u32 new_load);
    u32 newInstance(u16 model, u32 node);
    void killInstance(u32 inst);

    // ---- dispatch (assignment + autoscale) ----
    void dispatch();
    u32 popWaiting(u16 m);
    void assignTo(u32 inst, u32 req);

    // ---- instance launch ----
    void traceLaunchSpan(std::string_view name,
                         std::string_view category, f64 start_sec,
                         f64 dur_sec);
    bool nodeDown(u32 n) const;
    u32 chooseNode(u16 m);
    f64 nodeFetch(u32 node, u16 m);
    bool launchInstance(u16 m);

    // ---- event handlers ----
    void onArrival(u32 req);
    void enqueueWaiting(u32 req);
    void onLaunchDone(u32 inst, bool alive);
    void onStepDone(u32 inst);
    void onIdleReclaim(u32 inst);

    // ---- the step loop ----
    void startStep(u32 inst);
    void finishStep(u32 inst);
    void armIdleTimeout(u32 inst);

    // ---- chaos + SLO ----
    void traceInstant(std::string_view name, std::string_view category);
    void onChaosEvent(u32 idx);
    void crashNode(u32 node, f64 recover_at);
    void onNodeRecover(u32 node);
    void crashInstance(u32 inst);
    void requeueChain(u32 head);
    void requeueRequest(u32 req);
    void onRetryAdmit(u32 req);
    void onDeadline(u32 req);
    void shedRequest(u32 req, bool admission);
    f64 projectedWaitSec(u16 m);
    f64 expectedLaunchSec();

    // ---- hook plumbing (no-ops when hooks_ is null) ----
    void markTerminal(u32 req, RequestOutcome outcome);
    void emitToken(u32 req, u32 count);

    enum : u8
    {
        kColdStarting = 0,
        kLive = 1,
        kDead = 2,
    };

    /** Request terminal-state lattice (DESIGN.md §16). */
    enum : u8
    {
        kStWaiting = 0,
        kStAssigned,
        kStDone,
        kStShed,
        kStFailed,
        kStRetryWait,
    };

    serverless::ClusterOptions options_;
    const serverless::ServingProfile &profile_;
    const RequestHooks *hooks_ = nullptr;
    Engine engine_;
    /** Run-local recorder on the engine clock (exported at end). */
    TraceRecorder rec_;
    /** &rec_ when the caller asked for tracing, else null. */
    TraceRecorder *trace_ = nullptr;
    /** Canonical `cluster.*` counters; TraceMetrics is a view of it. */
    MetricsRegistry metrics_;
    bool nodes_on_ = false;
    bool chaos_on_ = false;
    bool slo_on_ = false;
    bool hooked_cache_ = false;
    bool finished_ = false;

    // Request table (struct-of-arrays, submission order).
    std::vector<f64> req_arrival_;
    std::vector<u32> req_prompt_;
    std::vector<u32> req_output_;
    std::vector<u32> req_generated_;
    std::vector<f64> req_first_token_;
    std::vector<f64> req_finished_;
    std::vector<u32> req_next_;
    std::vector<u16> req_model_;
    std::vector<f64> req_deadline_;
    std::vector<u32> req_retries_;
    std::vector<u8> req_state_;

    // Instance table (struct-of-arrays, creation order).
    std::vector<u8> inst_state_;
    std::vector<u8> inst_hot_spare_;
    std::vector<u8> inst_stepping_;
    std::vector<u8> inst_step_is_prefill_;
    std::vector<u16> inst_model_;
    std::vector<u32> inst_node_;
    std::vector<u32> inst_prefill_head_;
    std::vector<u32> inst_prefill_tail_;
    std::vector<u32> inst_prefill_count_;
    std::vector<u32> inst_batch_head_;
    std::vector<u32> inst_running_head_;
    std::vector<u32> inst_running_tail_;
    std::vector<u32> inst_running_count_;
    std::vector<f64> inst_launched_at_;
    std::vector<f64> inst_died_at_;
    std::vector<f64> inst_idle_since_;
    std::vector<serverless::EventHandle> inst_idle_timer_;
    std::vector<serverless::EventHandle> inst_step_timer_;
    std::vector<serverless::EventHandle> inst_launch_timer_;
    std::vector<u64> inst_warmed_;
    std::size_t warmed_stride_ = 0;

    // Waiting FIFOs and the dispatch index, per model.
    std::vector<u32> wait_head_;
    std::vector<u32> wait_tail_;
    std::vector<u64> wait_count_;
    std::vector<u32> pending_;
    std::vector<LoadIndex> by_load_;

    // Node-level artifact residency (affinity study).
    std::vector<u32> node_free_;
    std::vector<u16> node_models_;
    std::vector<u64> node_stamp_;
    u64 lru_tick_ = 0;

    // Chaos state (empty / zero when no plan is armed).
    std::vector<serverless::ChaosEvent> chaos_sched_;
    std::vector<u8> node_down_;
    std::vector<u32> node_cap_;
    u32 down_gpus_ = 0;
    f64 store_until_ = 0;
    f64 gray_until_ = 0;

    u32 busy_gpus_ = 0;
    u64 live_count_ = 0;
    u64 peak_live_ = 0;
    u64 arrival_events_ = 0;
    std::size_t terminal_count_ = 0;
    PercentileTracker launch_sec_;
};

} // namespace medusa::serve

#endif // MEDUSA_SERVE_SCHEDULER_H
