#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace medusa::serve {

namespace {

/** Recursive-descent parser over a string_view cursor. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    StatusOr<Json>
    run()
    {
        MEDUSA_ASSIGN_OR_RETURN(Json v, value(0));
        skipWs();
        if (pos_ != text_.size()) {
            return fail("trailing characters after JSON value");
        }
        return v;
    }

  private:
    static constexpr int kMaxDepth = 64;

    Status
    fail(const std::string &msg) const
    {
        return invalidArgument("json: " + msg + " at offset " +
                               std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) == word) {
            pos_ += word.size();
            return true;
        }
        return false;
    }

    StatusOr<Json>
    value(int depth)
    {
        if (depth > kMaxDepth) {
            return fail("nesting too deep");
        }
        skipWs();
        if (pos_ >= text_.size()) {
            return fail("unexpected end of input");
        }
        const char c = text_[pos_];
        switch (c) {
        case '{':
            return parseObject(depth);
        case '[':
            return parseArray(depth);
        case '"': {
            MEDUSA_ASSIGN_OR_RETURN(std::string s, parseString());
            return Json::string(std::move(s));
        }
        case 't':
            if (consumeWord("true")) {
                return Json::boolean(true);
            }
            return fail("bad literal");
        case 'f':
            if (consumeWord("false")) {
                return Json::boolean(false);
            }
            return fail("bad literal");
        case 'n':
            if (consumeWord("null")) {
                return Json::null();
            }
            return fail("bad literal");
        default:
            return parseNumber();
        }
    }

    StatusOr<Json>
    parseObject(int depth)
    {
        consume('{');
        Json obj = Json::object();
        skipWs();
        if (consume('}')) {
            return obj;
        }
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                return fail("expected object key");
            }
            MEDUSA_ASSIGN_OR_RETURN(std::string key, parseString());
            skipWs();
            if (!consume(':')) {
                return fail("expected ':'");
            }
            MEDUSA_ASSIGN_OR_RETURN(Json v, value(depth + 1));
            obj.set(std::move(key), std::move(v));
            skipWs();
            if (consume(',')) {
                continue;
            }
            if (consume('}')) {
                return obj;
            }
            return fail("expected ',' or '}'");
        }
    }

    StatusOr<Json>
    parseArray(int depth)
    {
        consume('[');
        Json arr = Json::array();
        skipWs();
        if (consume(']')) {
            return arr;
        }
        for (;;) {
            MEDUSA_ASSIGN_OR_RETURN(Json v, value(depth + 1));
            arr.push(std::move(v));
            skipWs();
            if (consume(',')) {
                continue;
            }
            if (consume(']')) {
                return arr;
            }
            return fail("expected ',' or ']'");
        }
    }

    StatusOr<u32>
    parseHex4()
    {
        if (pos_ + 4 > text_.size()) {
            return fail("truncated \\u escape");
        }
        u32 v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + static_cast<std::size_t>(i)];
            v <<= 4;
            if (c >= '0' && c <= '9') {
                v |= static_cast<u32>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                v |= static_cast<u32>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                v |= static_cast<u32>(c - 'A' + 10);
            } else {
                return fail("bad \\u escape");
            }
        }
        pos_ += 4;
        return v;
    }

    static void
    appendUtf8(std::string &out, u32 cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        }
    }

    StatusOr<std::string>
    parseString()
    {
        consume('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) {
                return fail("unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) {
                return fail("unterminated escape");
            }
            const char e = text_[pos_++];
            switch (e) {
            case '"':
            case '\\':
            case '/':
                out.push_back(e);
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u': {
                MEDUSA_ASSIGN_OR_RETURN(u32 cp, parseHex4());
                if (cp >= 0xd800 && cp < 0xdc00 &&
                    text_.substr(pos_, 2) == "\\u") {
                    pos_ += 2;
                    MEDUSA_ASSIGN_OR_RETURN(u32 lo, parseHex4());
                    if (lo >= 0xdc00 && lo < 0xe000) {
                        cp = 0x10000 + ((cp - 0xd800) << 10) +
                             (lo - 0xdc00);
                    } else {
                        return fail("bad surrogate pair");
                    }
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                return fail("bad escape");
            }
        }
    }

    StatusOr<Json>
    parseNumber()
    {
        const std::size_t start = pos_;
        consume('-');
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) !=
                    0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) {
            return fail("expected a value");
        }
        const std::string tok(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const f64 v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size()) {
            return fail("bad number");
        }
        return Json::number(v);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::boolean(bool v)
{
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = v;
    return j;
}

Json
Json::number(f64 v)
{
    Json j;
    j.type_ = Type::kNumber;
    j.num_ = v;
    return j;
}

Json
Json::string(std::string v)
{
    Json j;
    j.type_ = Type::kString;
    j.str_ = std::move(v);
    return j;
}

Json
Json::array()
{
    Json j;
    j.type_ = Type::kArray;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::kObject;
    return j;
}

StatusOr<Json>
Json::parse(std::string_view text)
{
    return Parser(text).run();
}

const Json *
Json::find(std::string_view key) const
{
    if (type_ != Type::kObject) {
        return nullptr;
    }
    for (const auto &[k, v] : obj_) {
        if (k == key) {
            return &v;
        }
    }
    return nullptr;
}

Json &
Json::push(Json v)
{
    MEDUSA_CHECK(type_ == Type::kArray, "push on non-array Json");
    arr_.push_back(std::move(v));
    return *this;
}

Json &
Json::set(std::string key, Json v)
{
    MEDUSA_CHECK(type_ == Type::kObject, "set on non-object Json");
    obj_.emplace_back(std::move(key), std::move(v));
    return *this;
}

void
appendJsonString(std::string &out, std::string_view text)
{
    out.push_back('"');
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
Json::dumpTo(std::string &out) const
{
    switch (type_) {
    case Type::kNull:
        out += "null";
        break;
    case Type::kBool:
        out += bool_ ? "true" : "false";
        break;
    case Type::kNumber: {
        if (std::isfinite(num_) &&
            num_ == static_cast<f64>(static_cast<i64>(num_)) &&
            std::abs(num_) < 1e15) {
            out += std::to_string(static_cast<i64>(num_));
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", num_);
            out += buf;
        }
        break;
    }
    case Type::kString:
        appendJsonString(out, str_);
        break;
    case Type::kArray: {
        out.push_back('[');
        bool first = true;
        for (const Json &v : arr_) {
            if (!first) {
                out.push_back(',');
            }
            first = false;
            v.dumpTo(out);
        }
        out.push_back(']');
        break;
    }
    case Type::kObject: {
        out.push_back('{');
        bool first = true;
        for (const auto &[k, v] : obj_) {
            if (!first) {
                out.push_back(',');
            }
            first = false;
            appendJsonString(out, k);
            out.push_back(':');
            v.dumpTo(out);
        }
        out.push_back('}');
        break;
    }
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

} // namespace medusa::serve
