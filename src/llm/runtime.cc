#include "llm/runtime.h"

#include <algorithm>

#include "simcuda/kernels/builtin.h"

namespace medusa::llm {

using simcuda::BuiltinKernels;
using simcuda::CudaGraph;
using simcuda::GraphExec;
using simcuda::ParamsBuilder;
using simcuda::Stream;

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::kStructInit: return "struct_init";
      case Stage::kWeights: return "weights";
      case Stage::kTokenizer: return "tokenizer";
      case Stage::kKvInit: return "kv_init";
      case Stage::kCapture: return "capture";
      case Stage::kServing: return "serving";
    }
    return "?";
}

ModelRuntime::ModelRuntime(const Options &opts)
    : model_(opts.model),
      aslr_seed_(opts.aslr_seed),
      cost_(opts.cost != nullptr ? opts.cost : &cost_storage_),
      observer_(opts.observer)
{
    simcuda::GpuProcessOptions popts;
    popts.aslr_seed = opts.aslr_seed;
    popts.device_index = opts.device_index;
    process_ = std::make_unique<simcuda::GpuProcess>(popts, &clock_,
                                                     cost_);
    alloc_ = std::make_unique<simcuda::CachingAllocator>(
        process_.get(), /*reuse_seed=*/opts.aslr_seed);
    if (opts.alloc_observer != nullptr) {
        alloc_->setObserver(opts.alloc_observer);
    }
    if (opts.launch_observer != nullptr) {
        process_->setLaunchObserver(opts.launch_observer);
    }
}

void
ModelRuntime::rollbackToPristine()
{
    process_->resetToPristine();
    // Rebuild the allocator with the original reuse seed so the pooled
    // reuse choices of the next attempt match a fresh launch. The
    // observer is deliberately dropped; the restore driver re-attaches
    // a fresh one per attempt.
    alloc_ = std::make_unique<simcuda::CachingAllocator>(
        process_.get(), /*reuse_seed=*/aslr_seed_);
    weights_ = ModelWeights{};
    tokenizer_ = BpeTokenizer{};
    tokenizer_loaded_ = false;
    bufs_ = ForwardBuffers{};
    kv_ = KvCache{};
    semaphores_.clear();
    lm_workspace_.clear();
    graphs_.clear();
    structure_ready_ = false;
    weights_ready_ = false;
}

ForwardPass::Env
ModelRuntime::forwardEnv()
{
    ForwardPass::Env env;
    env.process = process_.get();
    env.alloc = alloc_.get();
    env.model = &model_;
    env.weights = &weights_;
    env.kv = &kv_;
    env.bufs = &bufs_;
    env.semaphores = &semaphores_;
    env.lm_workspace = &lm_workspace_;
    return env;
}

Status
ModelRuntime::initStructure()
{
    if (structure_ready_) {
        return failedPrecondition("structure already initialized");
    }
    // CUDA context creation happens on first device use.
    clock_.advance(units::msToNs(cost_->cuda_context_init_ms));
    MEDUSA_ASSIGN_OR_RETURN(weights_,
                            initModelStructure(*alloc_, model_));
    // Host-side module graph construction cost per tensor.
    clock_.advance(units::usToNs(cost_->struct_init_per_tensor_us *
                                 static_cast<f64>(weights_.tensorCount())));
    structure_ready_ = true;
    return Status::ok();
}

Status
ModelRuntime::loadWeights()
{
    if (!structure_ready_) {
        return failedPrecondition("structure not initialized");
    }
    MEDUSA_RETURN_IF_ERROR(loadModelWeights(*process_, model_, weights_));
    weights_ready_ = true;
    return Status::ok();
}

Status
ModelRuntime::loadTokenizer()
{
    // Functional: train a small BPE deterministically from the model
    // seed. Timing: charged from the real vocabulary size.
    const std::string corpus = syntheticCorpus(model_.seed, 8192);
    tokenizer_ = BpeTokenizer::train(corpus, 256 + 64);
    clock_.advance(units::msToNs(cost_->tokenizer_fixed_ms));
    clock_.advance(
        units::usToNs(cost_->tokenizer_per_entry_ns *
                      static_cast<f64>(model_.vocab) / 1000.0));
    tokenizer_loaded_ = true;
    return Status::ok();
}

Status
ModelRuntime::adoptTokenizer(BpeTokenizer tokenizer)
{
    tokenizer_ = std::move(tokenizer);
    // Identical simulated charge to loadTokenizer: what changed is the
    // host-side work, not the modeled system's tokenizer load.
    clock_.advance(units::msToNs(cost_->tokenizer_fixed_ms));
    clock_.advance(
        units::usToNs(cost_->tokenizer_per_entry_ns *
                      static_cast<f64>(model_.vocab) / 1000.0));
    tokenizer_loaded_ = true;
    return Status::ok();
}

StatusOr<u64>
ModelRuntime::profileFreeMemory()
{
    if (!structure_ready_) {
        return failedPrecondition("structure not initialized");
    }
    if (bufs_.initialized()) {
        return failedPrecondition("KV init already ran");
    }
    MEDUSA_ASSIGN_OR_RETURN(
        bufs_, allocateForwardBuffers(*alloc_, model_, observer_));

    // Profiling forwarding: maximum token budget in one batch, dummy
    // KV (a throwaway single-block cache so kernels have a target).
    const FuncDims &f = model_.func;
    KvCache profile_kv;
    const u64 slot_bytes =
        static_cast<u64>(f.block_size) * f.kvDim() * sizeof(f32) *
        (f.max_batched_tokens / f.block_size + 2);
    for (u32 l = 0; l < model_.num_layers; ++l) {
        MEDUSA_ASSIGN_OR_RETURN(DeviceAddr kaddr,
                                alloc_->allocate(slot_bytes, slot_bytes));
        MEDUSA_ASSIGN_OR_RETURN(DeviceAddr vaddr,
                                alloc_->allocate(slot_bytes, slot_bytes));
        profile_kv.k_layers.push_back(kaddr);
        profile_kv.v_layers.push_back(vaddr);
    }
    std::swap(kv_, profile_kv);

    // Stage inputs: one batch of max_batched_tokens as a handful of
    // max-length sequences (vLLM profiles max seq len x max batch).
    const u32 n = f.max_batched_tokens;
    const u32 bs = std::max<u32>(1, n / f.max_seq);
    std::vector<i32> ids(n), pos(n), slots(n), starts(bs + 1);
    for (u32 t = 0; t < n; ++t) {
        ids[t] = static_cast<i32>(t % f.vocab);
        pos[t] = static_cast<i32>(t % f.max_seq);
        slots[t] = static_cast<i32>(t);
    }
    for (u32 b = 0; b <= bs; ++b) {
        starts[b] = static_cast<i32>(
            std::min<u32>(n, b * f.max_seq));
    }
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.token_ids, ids.data(), n * 4, n * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.positions, pos.data(), n * 4, n * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.slot_mapping, slots.data(), n * 4, n * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.seq_starts, starts.data(), (bs + 1) * 4, (bs + 1) * 4));

    ForwardPass fwd(forwardEnv());
    // Real token budget: vLLM profiles max_num_batched_tokens.
    const f64 prefill_start = clock_.nowSec();
    MEDUSA_RETURN_IF_ERROR(fwd.prefill(process_->defaultStream(), bs, n,
                                       model_.max_batched_tokens));
    MEDUSA_RETURN_IF_ERROR(process_->defaultStream().synchronize());
    // The profiling run is slower than a steady-state prefill: a fixed
    // part (syncs, memory measurement, bookkeeping) plus a mild
    // multiplicative slowdown (see CostModel::kv_profile_*).
    const f64 prefill_sec = clock_.nowSec() - prefill_start;
    clock_.advance(units::secToNs(prefill_sec *
                                  (cost_->kv_profile_slowdown - 1.0)));
    clock_.advance(units::msToNs(cost_->kv_profile_fixed_ms));

    // Tear the throwaway profile cache back down (returned to the pool,
    // like PyTorch's allocator after the profiling run).
    std::swap(kv_, profile_kv);
    for (DeviceAddr a : profile_kv.k_layers) {
        MEDUSA_RETURN_IF_ERROR(alloc_->free(a));
    }
    for (DeviceAddr a : profile_kv.v_layers) {
        MEDUSA_RETURN_IF_ERROR(alloc_->free(a));
    }
    // The profiling answer: residual free device memory. (Pooled bytes
    // were returned to the pool but not the driver; vLLM accounts the
    // same way via torch.cuda.mem_get_info after emptying the cache.)
    return process_->memory().freeLogicalBytes() + alloc_->pooledBytes();
}

Status
ModelRuntime::initKvCache(u64 free_gpu_bytes)
{
    if (kv_.initialized()) {
        return failedPrecondition("KV cache already initialized");
    }
    MEDUSA_ASSIGN_OR_RETURN(kv_, allocateKvCache(*alloc_, model_,
                                                 free_gpu_bytes));
    clock_.advance(units::msToNs(
        cost_->kv_init_fixed_ms +
        cost_->kv_block_alloc_per_gib_ms *
            (static_cast<f64>(kv_.logical_bytes) /
             static_cast<f64>(units::GiB))));
    if (observer_ != nullptr) {
        for (u32 l = 0; l < model_.num_layers; ++l) {
            observer_->onTagBuffer("kv.k." + std::to_string(l),
                                   kv_.k_layers[l]);
            observer_->onTagBuffer("kv.v." + std::to_string(l),
                                   kv_.v_layers[l]);
        }
    }
    return Status::ok();
}

Status
ModelRuntime::adoptBuffers(const ForwardBuffers &bufs, KvCache cache)
{
    if (bufs_.initialized() || kv_.initialized()) {
        return failedPrecondition("buffers already initialized");
    }
    bufs_ = bufs;
    kv_ = std::move(cache);
    clock_.advance(units::msToNs(cost_->kv_init_fixed_ms));
    return Status::ok();
}

Status
ModelRuntime::warmupDecode(u32 bs)
{
    if (!kv_.initialized() || !bufs_.initialized()) {
        return failedPrecondition("KV cache not ready for warm-up");
    }
    // Stage trivial decode inputs: bs padding rows (seq_len 0).
    std::vector<i32> zeros(std::max<u32>(bs, 1), 0);
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.token_ids, zeros.data(), bs * 4, bs * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.positions, zeros.data(), bs * 4, bs * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.slot_mapping, zeros.data(), bs * 4, bs * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.seq_lens, zeros.data(), bs * 4, bs * 4));
    ForwardPass fwd(forwardEnv());
    MEDUSA_RETURN_IF_ERROR(fwd.decodeFull(process_->defaultStream(), bs));
    return process_->defaultStream().synchronize();
}

StatusOr<CudaGraph>
ModelRuntime::captureDecode(u32 bs)
{
    Stream &stream = process_->defaultStream();
    MEDUSA_RETURN_IF_ERROR(process_->beginCapture(stream));
    ForwardPass fwd(forwardEnv());
    Status fwd_status = fwd.decodeFull(stream, bs);
    if (!fwd_status.isOk()) {
        // Abort the capture so the process is usable again.
        (void)process_->endCapture(stream);
        return fwd_status;
    }
    return process_->endCapture(stream);
}

StatusOr<CudaGraph>
ModelRuntime::captureFirstLayer()
{
    // Warm up the first layer (plus embedding and LM head so their
    // modules load too), then capture it. This is the
    // triggering-kernels mechanism: loading is module-granular, so the
    // first layer's kernels force every module the full graphs need.
    std::vector<i32> zeros(1, 0);
    MEDUSA_RETURN_IF_ERROR(
        process_->memcpyH2D(bufs_.token_ids, zeros.data(), 4, 4));
    MEDUSA_RETURN_IF_ERROR(
        process_->memcpyH2D(bufs_.positions, zeros.data(), 4, 4));
    MEDUSA_RETURN_IF_ERROR(
        process_->memcpyH2D(bufs_.slot_mapping, zeros.data(), 4, 4));
    MEDUSA_RETURN_IF_ERROR(
        process_->memcpyH2D(bufs_.seq_lens, zeros.data(), 4, 4));
    ForwardPass warm(forwardEnv());
    MEDUSA_RETURN_IF_ERROR(
        warm.decode(process_->defaultStream(), 1, 0, 1, true));
    MEDUSA_RETURN_IF_ERROR(process_->defaultStream().synchronize());

    Stream &stream = process_->defaultStream();
    MEDUSA_RETURN_IF_ERROR(process_->beginCapture(stream));
    ForwardPass fwd(forwardEnv());
    Status fwd_status = fwd.decode(stream, 1, 0, 1, true);
    if (!fwd_status.isOk()) {
        (void)process_->endCapture(stream);
        return fwd_status;
    }
    return process_->endCapture(stream);
}

Status
ModelRuntime::instantiateGraph(u32 bs, const CudaGraph &graph)
{
    MEDUSA_ASSIGN_OR_RETURN(GraphExec exec,
                            process_->instantiate(graph));
    graphs_.insert_or_assign(bs, std::move(exec));
    return Status::ok();
}

Status
ModelRuntime::instantiateGraphs(
    const std::vector<std::pair<u32, const CudaGraph *>> &ordered,
    FaultInjector *fault)
{
    std::vector<u32> registered;
    registered.reserve(ordered.size());
    Status st = Status::ok();
    for (const auto &[bs, graph] : ordered) {
        if (fault != nullptr) {
            st = fault->check(FaultPoint::kGraphInstantiate,
                              "graph bs=" + std::to_string(bs));
            if (!st.isOk()) {
                break;
            }
        }
        st = instantiateGraph(bs, *graph);
        if (!st.isOk()) {
            break;
        }
        registered.push_back(bs);
    }
    if (!st.isOk()) {
        // Unregister this batch's slots so a mid-batch failure cannot
        // leak partially-built graphs into the serving table (they
        // would be replayed against rolled-back device state).
        for (u32 bs : registered) {
            graphs_.erase(bs);
        }
    }
    return st;
}

Status
ModelRuntime::instantiatePatchedGraphs(
    const std::vector<std::pair<u32, simcuda::GpuProcess::PatchedGraphDesc>>
        &ordered,
    FaultInjector *fault)
{
    std::vector<u32> registered;
    registered.reserve(ordered.size());
    Status st = Status::ok();
    for (const auto &[bs, desc] : ordered) {
        if (fault != nullptr) {
            st = fault->check(FaultPoint::kGraphInstantiate,
                              "graph bs=" + std::to_string(bs));
            if (!st.isOk()) {
                break;
            }
        }
        auto exec = process_->instantiatePatched(desc);
        if (!exec.isOk()) {
            st = exec.status();
            break;
        }
        graphs_.insert_or_assign(bs, std::move(*exec));
        registered.push_back(bs);
    }
    if (!st.isOk()) {
        // Same contract as instantiateGraphs: a failed batch leaves the
        // graph table exactly as it found it.
        for (u32 bs : registered) {
            graphs_.erase(bs);
        }
    }
    return st;
}

Status
ModelRuntime::captureDecodeGraphs()
{
    // Largest batch size first, as vLLM does (peak memory reserved up
    // front).
    auto sizes = captureBatchSizes();
    std::sort(sizes.begin(), sizes.end(), std::greater<>());
    for (u32 bs : sizes) {
        MEDUSA_RETURN_IF_ERROR(warmupDecode(bs));
        MEDUSA_ASSIGN_OR_RETURN(CudaGraph graph, captureDecode(bs));
        MEDUSA_RETURN_IF_ERROR(instantiateGraph(bs, graph));
    }
    return Status::ok();
}

StatusOr<const simcuda::GraphExec *>
ModelRuntime::graphExec(u32 bs) const
{
    auto it = graphs_.find(bs);
    if (it == graphs_.end()) {
        return notFound("no instantiated graph for batch size " +
                        std::to_string(bs));
    }
    return &it->second;
}

u64
ModelRuntime::totalGraphNodes() const
{
    u64 total = 0;
    for (const auto &[bs, exec] : graphs_) {
        total += exec.nodeCount();
    }
    return total;
}

StatusOr<u32>
ModelRuntime::graphBatchFor(u32 n) const
{
    u32 best = 0;
    for (const auto &[bs, exec] : graphs_) {
        if (bs >= n && (best == 0 || bs < best)) {
            best = bs;
        }
    }
    if (best == 0) {
        return notFound("no captured graph covers batch size " +
                        std::to_string(n));
    }
    return best;
}

Status
ModelRuntime::stageDecodeInputs(const std::vector<Sequence *> &seqs,
                                u32 padded_bs)
{
    const FuncDims &f = model_.func;
    const u32 mb = bufs_.max_blocks_per_seq;
    std::vector<i32> ids(padded_bs, 0), pos(padded_bs, 0),
        lens(padded_bs, 0), slots(padded_bs, 0);
    std::vector<i32> tables(static_cast<std::size_t>(padded_bs) * mb, 0);
    for (std::size_t i = 0; i < seqs.size(); ++i) {
        const Sequence &s = *seqs[i];
        MEDUSA_CHECK(!s.tokens.empty(), "empty sequence in decode batch");
        ids[i] = s.tokens.back() % static_cast<i32>(f.vocab);
        pos[i] = static_cast<i32>(s.len() - 1);
        lens[i] = static_cast<i32>(s.len());
        const u32 last = s.len() - 1;
        const u32 block_idx = last / f.block_size;
        MEDUSA_CHECK(block_idx < s.blocks.size(),
                     "sequence missing KV block");
        slots[i] = s.blocks[block_idx] * static_cast<i32>(f.block_size) +
                   static_cast<i32>(last % f.block_size);
        for (std::size_t b = 0; b < s.blocks.size() && b < mb; ++b) {
            tables[i * mb + b] = s.blocks[b];
        }
    }
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.token_ids, ids.data(), padded_bs * 4, padded_bs * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.positions, pos.data(), padded_bs * 4, padded_bs * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.seq_lens, lens.data(), padded_bs * 4, padded_bs * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.slot_mapping, slots.data(), padded_bs * 4, padded_bs * 4));
    return process_->memcpyH2D(bufs_.block_tables, tables.data(),
                               tables.size() * 4, tables.size() * 4);
}

StatusOr<std::vector<f32>>
ModelRuntime::readLogits(u32 bs, u32 row_offset)
{
    const u32 vocab = model_.func.vocab;
    std::vector<f32> out(static_cast<std::size_t>(bs) * vocab);
    MEDUSA_RETURN_IF_ERROR(process_->memcpyD2H(
        out.data(),
        bufs_.logits + static_cast<u64>(row_offset) * vocab * sizeof(f32),
        out.size() * sizeof(f32), out.size() * 2));
    return out;
}

StatusOr<i32>
ModelRuntime::sampleToken(u32 row)
{
    const BuiltinKernels &k = BuiltinKernels::get();
    const u32 vocab = model_.func.vocab;
    ParamsBuilder pb;
    pb.ptr(bufs_.logits + static_cast<u64>(row) * vocab * sizeof(f32))
        .ptr(bufs_.sampled)
        .i32(1)
        .i32(static_cast<i32>(vocab));
    TimingInfo t;
    t.bytes = static_cast<f64>(model_.vocab) * 2.0;
    MEDUSA_RETURN_IF_ERROR(
        process_->defaultStream().launch(k.sample_argmax, pb.take(), t));
    i32 token = 0;
    MEDUSA_RETURN_IF_ERROR(
        process_->memcpyD2H(&token, bufs_.sampled, 4, 4));
    return token;
}

StatusOr<std::vector<i32>>
ModelRuntime::generate(const std::vector<i32> &prompt, u32 max_new_tokens)
{
    if (!kv_.initialized() || !bufs_.initialized() || !weights_ready_) {
        return failedPrecondition("engine not fully loaded");
    }
    const FuncDims &f = model_.func;
    if (prompt.empty() || prompt.size() > f.max_batched_tokens) {
        return invalidArgument("bad prompt length");
    }
    Sequence seq;
    seq.tokens = prompt;
    seq.prompt_len = static_cast<u32>(prompt.size());
    // Claim KV blocks for prompt + generation budget.
    const u32 final_len = std::min<u32>(
        seq.prompt_len + max_new_tokens, f.max_seq);
    const u32 blocks_needed =
        (final_len + f.block_size - 1) / f.block_size;
    for (u32 b = 0; b < blocks_needed; ++b) {
        MEDUSA_ASSIGN_OR_RETURN(i32 block, kv_.blocks.allocate());
        seq.blocks.push_back(block);
    }
    auto release = [&]() {
        for (i32 b : seq.blocks) {
            (void)kv_.blocks.free(b);
        }
    };

    // ---- prefill (eager, as in vLLM) ------------------------------------
    const u32 n = seq.prompt_len;
    std::vector<i32> ids(n), pos(n), slots(n);
    std::vector<i32> starts = {0, static_cast<i32>(n)};
    for (u32 t = 0; t < n; ++t) {
        ids[t] = prompt[t] % static_cast<i32>(f.vocab);
        pos[t] = static_cast<i32>(t);
        slots[t] =
            seq.blocks[t / f.block_size] * static_cast<i32>(f.block_size) +
            static_cast<i32>(t % f.block_size);
    }
    Status st = [&]() -> Status {
        MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
            bufs_.token_ids, ids.data(), n * 4, n * 4));
        MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
            bufs_.positions, pos.data(), n * 4, n * 4));
        MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
            bufs_.slot_mapping, slots.data(), n * 4, n * 4));
        MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
            bufs_.seq_starts, starts.data(), 8, 8));
        ForwardPass fwd(forwardEnv());
        return fwd.prefill(process_->defaultStream(), 1, n, n);
    }();
    if (!st.isOk()) {
        release();
        return st;
    }

    std::vector<i32> generated;
    auto first = sampleToken(n - 1);
    if (!first.isOk()) {
        release();
        return first.status();
    }
    generated.push_back(*first);
    seq.tokens.push_back(*first);

    // ---- decode loop ------------------------------------------------------
    std::vector<Sequence *> batch = {&seq};
    while (generated.size() < max_new_tokens &&
           seq.len() < final_len) {
        Status step = [&]() -> Status {
            auto bs = graphBatchFor(1);
            if (bs.isOk()) {
                MEDUSA_RETURN_IF_ERROR(stageDecodeInputs(batch, *bs));
                return process_->launchGraph(graphs_.at(*bs),
                                             process_->defaultStream());
            }
            // Eager decode (the "w/o CUDA graph" serving path).
            MEDUSA_RETURN_IF_ERROR(stageDecodeInputs(batch, 1));
            ForwardPass fwd(forwardEnv());
            return fwd.decodeFull(process_->defaultStream(), 1);
        }();
        if (!step.isOk()) {
            release();
            return step;
        }
        auto token = sampleToken(0);
        if (!token.isOk()) {
            release();
            return token.status();
        }
        generated.push_back(*token);
        seq.tokens.push_back(*token);
    }
    release();
    return generated;
}

StatusOr<f64>
ModelRuntime::measureDecodeStepSec(u32 bs, bool use_graph)
{
    if (!kv_.initialized() || !bufs_.initialized()) {
        return failedPrecondition("engine not loaded");
    }
    std::vector<i32> zeros(bs, 0);
    const f64 start = clock_.nowSec();
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.token_ids, zeros.data(), bs * 4, bs * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.positions, zeros.data(), bs * 4, bs * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.slot_mapping, zeros.data(), bs * 4, bs * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.seq_lens, zeros.data(), bs * 4, bs * 4));
    if (use_graph) {
        auto it = graphs_.find(bs);
        if (it == graphs_.end()) {
            return notFound("no graph for batch size " +
                            std::to_string(bs));
        }
        MEDUSA_RETURN_IF_ERROR(process_->launchGraph(
            it->second, process_->defaultStream()));
    } else {
        ForwardPass fwd(forwardEnv());
        MEDUSA_RETURN_IF_ERROR(
            fwd.decodeFull(process_->defaultStream(), bs));
    }
    MEDUSA_ASSIGN_OR_RETURN(i32 token, sampleToken(0));
    (void)token;
    return clock_.nowSec() - start;
}

StatusOr<f64>
ModelRuntime::measurePrefillSec(u32 n_real_tokens)
{
    if (!kv_.initialized() || !bufs_.initialized()) {
        return failedPrecondition("engine not loaded");
    }
    const FuncDims &f = model_.func;
    const u32 n = std::clamp<u32>(n_real_tokens / 8, 1,
                                  f.max_batched_tokens);
    const u32 bs = std::max<u32>(1, n / f.max_seq);
    std::vector<i32> ids(n), pos(n), slots(n), starts(bs + 1);
    for (u32 t = 0; t < n; ++t) {
        ids[t] = static_cast<i32>(t % f.vocab);
        pos[t] = static_cast<i32>(t % f.max_seq);
        slots[t] = static_cast<i32>(t);
    }
    for (u32 b = 0; b <= bs; ++b) {
        starts[b] = static_cast<i32>(std::min<u32>(n, b * f.max_seq));
    }
    const f64 start = clock_.nowSec();
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.token_ids, ids.data(), n * 4, n * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.positions, pos.data(), n * 4, n * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.slot_mapping, slots.data(), n * 4, n * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.seq_starts, starts.data(), (bs + 1) * 4, (bs + 1) * 4));
    ForwardPass fwd(forwardEnv());
    MEDUSA_RETURN_IF_ERROR(fwd.prefill(process_->defaultStream(), bs, n,
                                       n_real_tokens));
    MEDUSA_ASSIGN_OR_RETURN(i32 token, sampleToken(n - 1));
    (void)token;
    return clock_.nowSec() - start;
}

Status
ModelRuntime::stageValidationState(u32 bs)
{
    const FuncDims &f = model_.func;
    if (bs + 1 >= f.num_blocks) {
        return invalidArgument("validation batch too large for pool");
    }
    const u32 mb = bufs_.max_blocks_per_seq;
    const u32 ctx = 6; // tokens already in the cache per sequence
    std::vector<i32> ids(bs), pos(bs), lens(bs), slots(bs);
    std::vector<i32> tables(static_cast<std::size_t>(bs) * mb, 0);
    for (u32 i = 0; i < bs; ++i) {
        ids[i] = static_cast<i32>((i * 7 + 3) % f.vocab);
        pos[i] = static_cast<i32>(ctx - 1);
        lens[i] = static_cast<i32>(ctx);
        const i32 block = static_cast<i32>(1 + i);
        tables[static_cast<std::size_t>(i) * mb] = block;
        slots[i] = block * static_cast<i32>(f.block_size) +
                   static_cast<i32>(ctx - 1);
    }
    MEDUSA_RETURN_IF_ERROR(
        process_->memcpyH2D(bufs_.token_ids, ids.data(), bs * 4, bs * 4));
    MEDUSA_RETURN_IF_ERROR(
        process_->memcpyH2D(bufs_.positions, pos.data(), bs * 4, bs * 4));
    MEDUSA_RETURN_IF_ERROR(
        process_->memcpyH2D(bufs_.seq_lens, lens.data(), bs * 4, bs * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.slot_mapping, slots.data(), bs * 4, bs * 4));
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        bufs_.block_tables, tables.data(), tables.size() * 4,
        tables.size() * 4));

    // Deterministic past-K/V contents for slots [block*bsz, +ctx).
    // Under tensor parallelism each rank holds its KV-head shard; the
    // pattern is indexed by the GLOBAL kv dimension so that sharded
    // caches compose into exactly the single-GPU contents.
    const u32 slot_width = model_.funcLocalKvDim();
    const u32 d_offset = model_.func.kv_heads >= model_.tp_world
                             ? model_.tp_rank * slot_width
                             : 0;
    std::vector<f32> kvrow(slot_width);
    for (u32 l = 0; l < model_.num_layers; ++l) {
        for (u32 i = 0; i < bs; ++i) {
            for (u32 t = 0; t + 1 < ctx; ++t) {
                const u64 slot =
                    static_cast<u64>(1 + i) * f.block_size + t;
                for (u32 d = 0; d < slot_width; ++d) {
                    const u32 x =
                        l * 131 + i * 17 + t * 5 + (d_offset + d);
                    kvrow[d] = 0.02f * static_cast<f32>(x % 23) - 0.2f;
                }
                MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
                    kv_.k_layers[l] + slot * slot_width * sizeof(f32),
                    kvrow.data(), slot_width * sizeof(f32), 0));
                for (u32 d = 0; d < slot_width; ++d) {
                    kvrow[d] = -kvrow[d] * 0.5f;
                }
                MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
                    kv_.v_layers[l] + slot * slot_width * sizeof(f32),
                    kvrow.data(), slot_width * sizeof(f32), 0));
            }
        }
    }
    return Status::ok();
}

StatusOr<std::vector<f32>>
ModelRuntime::eagerDecodeLogits(u32 bs)
{
    ForwardPass fwd(forwardEnv());
    MEDUSA_RETURN_IF_ERROR(fwd.decodeFull(process_->defaultStream(), bs));
    MEDUSA_RETURN_IF_ERROR(process_->defaultStream().synchronize());
    return readLogits(bs);
}

StatusOr<std::vector<f32>>
ModelRuntime::graphDecodeLogits(u32 bs)
{
    auto it = graphs_.find(bs);
    if (it == graphs_.end()) {
        return notFound("no instantiated graph for batch size " +
                        std::to_string(bs));
    }
    return execAndReadLogits(it->second, bs);
}

StatusOr<std::vector<f32>>
ModelRuntime::execAndReadLogits(const GraphExec &exec, u32 bs)
{
    MEDUSA_RETURN_IF_ERROR(
        process_->launchGraph(exec, process_->defaultStream()));
    MEDUSA_RETURN_IF_ERROR(process_->defaultStream().synchronize());
    return readLogits(bs);
}

} // namespace medusa::llm
