#include "llm/tensor_parallel.h"

namespace medusa::llm {

StatusOr<std::unique_ptr<TpCluster>>
TpCluster::create(const Options &o)
{
    if (o.world < 2 || o.world > 4) {
        return invalidArgument("tp world must be in [2, 4]");
    }
    if (o.model.heads % o.world != 0 ||
        o.model.func.heads % o.world != 0 ||
        o.model.intermediate % o.world != 0 ||
        o.model.func.intermediate % o.world != 0) {
        return invalidArgument(
            "model dimensions are not divisible by the tp world size");
    }
    std::unique_ptr<TpCluster> cluster(new TpCluster());
    for (u32 r = 0; r < o.world; ++r) {
        ModelRuntime::Options ropts;
        ropts.model = o.model;
        ropts.model.tp_world = o.world;
        ropts.model.tp_rank = r;
        ropts.aslr_seed = o.aslr_seed * 131 + r;
        ropts.device_index = r;
        ropts.cost = o.cost;
        if (r < o.alloc_observers.size()) {
            ropts.alloc_observer = o.alloc_observers[r];
        }
        if (r < o.launch_observers.size()) {
            ropts.launch_observer = o.launch_observers[r];
        }
        if (r < o.engine_observers.size()) {
            ropts.observer = o.engine_observers[r];
        }
        cluster->ranks_.push_back(
            std::make_unique<ModelRuntime>(ropts));
    }
    return cluster;
}

Status
TpCluster::loadAll()
{
    // Stage by stage across ranks, mirroring the per-rank control flow
    // a torchrun-style launcher produces.
    for (auto &rank : ranks_) {
        MEDUSA_RETURN_IF_ERROR(rank->initStructure());
    }
    for (auto &rank : ranks_) {
        MEDUSA_RETURN_IF_ERROR(rank->loadWeights());
    }
    for (auto &rank : ranks_) {
        MEDUSA_RETURN_IF_ERROR(rank->loadTokenizer());
    }
    for (auto &rank : ranks_) {
        MEDUSA_ASSIGN_OR_RETURN(u64 free_bytes,
                                rank->profileFreeMemory());
        MEDUSA_RETURN_IF_ERROR(rank->initKvCache(free_bytes));
    }
    return Status::ok();
}

Status
TpCluster::captureAll(const std::vector<u32> &batch_sizes)
{
    for (u32 bs : batch_sizes) {
        for (auto &rank : ranks_) {
            MEDUSA_RETURN_IF_ERROR(rank->warmupDecode(bs));
            MEDUSA_ASSIGN_OR_RETURN(auto graph, rank->captureDecode(bs));
            MEDUSA_RETURN_IF_ERROR(rank->instantiateGraph(bs, graph));
        }
    }
    return Status::ok();
}

Status
TpCluster::stageValidationState(u32 bs)
{
    for (auto &rank : ranks_) {
        MEDUSA_RETURN_IF_ERROR(rank->stageValidationState(bs));
    }
    return Status::ok();
}

StatusOr<std::vector<f32>>
TpCluster::lockstepDecodeLogits(u32 bs)
{
    std::vector<const simcuda::GraphExec *> execs;
    for (auto &rank : ranks_) {
        MEDUSA_ASSIGN_OR_RETURN(const simcuda::GraphExec *exec,
                                rank->graphExec(bs));
        execs.push_back(exec);
    }
    return lockstepDecodeLogits(bs, execs);
}

StatusOr<std::vector<f32>>
TpCluster::lockstepDecodeLogits(
    u32 bs, const std::vector<const simcuda::GraphExec *> &execs)
{
    if (execs.size() != ranks_.size()) {
        return invalidArgument("one graph per rank required");
    }
    std::vector<simcuda::LockstepRank> lockstep;
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
        lockstep.push_back(
            simcuda::LockstepRank{&ranks_[r]->process(), execs[r]});
    }
    MEDUSA_RETURN_IF_ERROR(simcuda::lockstepLaunch(lockstep));
    // Logits are replicated (every rank computes the full LM head over
    // the all-reduced hidden state); read rank 0's.
    const u32 vocab = ranks_[0]->model().func.vocab;
    std::vector<f32> out(static_cast<std::size_t>(bs) * vocab);
    MEDUSA_RETURN_IF_ERROR(ranks_[0]->process().memcpyD2H(
        out.data(), ranks_[0]->buffers().logits,
        out.size() * sizeof(f32), out.size() * 2));
    return out;
}

} // namespace medusa::llm
