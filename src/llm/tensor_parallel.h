/**
 * @file
 * Tensor-parallel serving cluster (the paper's §8 multi-GPU future
 * work).
 *
 * A TpCluster drives one ModelRuntime per rank, each in its own
 * simulated GPU process with sharded attention heads and MLP columns.
 * Decode graphs are captured per rank (warm-up runs eagerly with
 * rank-local no-op collectives, as warm-up outputs are discarded) and
 * replayed in lockstep, with the replayer providing the NCCL all-reduce
 * semantics (simcuda/lockstep.h). With identical sharded weights
 * composed from the same "weight files", the lockstep decode output
 * matches a single-GPU engine's output up to floating-point summation
 * order.
 */

#ifndef MEDUSA_LLM_TENSOR_PARALLEL_H
#define MEDUSA_LLM_TENSOR_PARALLEL_H

#include <memory>
#include <vector>

#include "llm/runtime.h"
#include "simcuda/lockstep.h"

namespace medusa::llm {

/**
 * The tensor-parallel engine; see file comment.
 */
class TpCluster
{
  public:
    struct Options
    {
        ModelConfig model;
        /** Ranks (GPUs); model head/intermediate dims must divide. */
        u32 world = 2;
        u64 aslr_seed = 1;
        const CostModel *cost = nullptr;
        /** Per-rank observer hooks (optional; Medusa's recorders). */
        std::vector<simcuda::AllocObserver *> alloc_observers;
        std::vector<simcuda::LaunchObserver *> launch_observers;
        std::vector<EngineObserver *> engine_observers;
    };

    /** Create the ranks (no loading yet). */
    static StatusOr<std::unique_ptr<TpCluster>> create(const Options &o);

    u32 world() const { return static_cast<u32>(ranks_.size()); }
    ModelRuntime &rank(u32 r) { return *ranks_.at(r); }

    /** Run loading stages ❶-❹ on every rank, stage by stage. */
    Status loadAll();

    /**
     * Warm up (eager, per rank) and capture + instantiate the decode
     * graphs for the given batch sizes on every rank.
     */
    Status captureAll(const std::vector<u32> &batch_sizes);

    /** Stage the same deterministic decode state on every rank. */
    Status stageValidationState(u32 bs);

    /**
     * Lockstep-replay the batch-size-bs graphs across all ranks and
     * return rank 0's logits.
     */
    StatusOr<std::vector<f32>> lockstepDecodeLogits(u32 bs);

    /** Lockstep-replay caller-provided per-rank graphs. */
    StatusOr<std::vector<f32>>
    lockstepDecodeLogits(u32 bs,
                         const std::vector<const simcuda::GraphExec *>
                             &execs);

  private:
    TpCluster() = default;

    std::vector<std::unique_ptr<ModelRuntime>> ranks_;
};

} // namespace medusa::llm

#endif // MEDUSA_LLM_TENSOR_PARALLEL_H
