/**
 * @file
 * The inference-engine runtime: one serving instance's in-process state.
 *
 * ModelRuntime is the vLLM-equivalent substrate. It owns the simulated
 * GPU process, the caching allocator, the model tensors, the tokenizer,
 * the KV cache and the captured decode graphs, and exposes the five
 * loading-phase stages of §2.1 as separate operations so that strategy
 * drivers (engine.h for the baselines, medusa/ for Medusa) can order and
 * overlap them:
 *
 *   ❶ initStructure      ❷ loadWeights       ❸ loadTokenizer
 *   ❹ profileFreeMemory + initKvCache        ❺ captureDecodeGraphs
 *
 * It also exposes the serving path (generate / decode steps) and the
 * validation helpers Medusa's §4 output-comparison uses.
 */

#ifndef MEDUSA_LLM_RUNTIME_H
#define MEDUSA_LLM_RUNTIME_H

#include <map>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "llm/forward.h"
#include "llm/hooks.h"
#include "llm/kv_cache.h"
#include "llm/model_config.h"
#include "llm/tokenizer.h"
#include "llm/weights.h"
#include "simcuda/caching_allocator.h"
#include "simcuda/gpu_process.h"

namespace medusa::llm {

/** One in-flight generation request. */
struct Sequence
{
    std::vector<i32> tokens;
    u32 prompt_len = 0;
    std::vector<i32> blocks;

    u32 len() const { return static_cast<u32>(tokens.size()); }
};

/**
 * The engine runtime; see file comment.
 */
class ModelRuntime
{
  public:
    struct Options
    {
        ModelConfig model;
        /** Per-process-launch seed (ASLR); differs across cold starts. */
        u64 aslr_seed = 1;
        /** GPU this runtime drives (tensor-parallel rank's device). */
        u32 device_index = 0;
        const CostModel *cost = nullptr;
        /** Medusa's recorder hooks; all optional. */
        EngineObserver *observer = nullptr;
        simcuda::AllocObserver *alloc_observer = nullptr;
        simcuda::LaunchObserver *launch_observer = nullptr;
    };

    explicit ModelRuntime(const Options &opts);

    // ---- accessors ------------------------------------------------------
    SimClock &clock() { return clock_; }
    simcuda::GpuProcess &process() { return *process_; }
    simcuda::CachingAllocator &allocator() { return *alloc_; }
    const ModelConfig &model() const { return model_; }
    const ModelWeights &weights() const { return weights_; }
    KvCache &kv() { return kv_; }
    const ForwardBuffers &buffers() const { return bufs_; }
    SemaphoreMap &semaphoreMap() { return semaphores_; }
    LmWorkspaceMap &lmWorkspaceMap() { return lm_workspace_; }
    const BpeTokenizer &tokenizer() const { return tokenizer_; }

    // ---- loading-phase stages ---------------------------------------------

    /** ❶ Instantiate the model structure (deterministic tensor order). */
    Status initStructure();

    /** ❷ Load weights from the simulated SSD array. */
    Status loadWeights();

    /** ❸ Load (train) the tokenizer; charged by real vocab size. */
    Status loadTokenizer();

    /**
     * ❸ Medusa patch path: adopt a tokenizer rebuilt from materialized
     * merges instead of re-training over the corpus. Charges exactly
     * the simulated cost of loadTokenizer — the real system still reads
     * the tokenizer data — so simulated stage times are identical
     * across the rebuild and patch paths; only host time drops.
     */
    Status adoptTokenizer(BpeTokenizer tokenizer);

    /**
     * ❹ (first half) Allocate the I/O buffers, then run the profiling
     * forwarding at the maximum token budget and report the residual
     * free GPU memory — the value Medusa materializes.
     */
    StatusOr<u64> profileFreeMemory();

    /** ❹ (second half) Reserve the KV cache from the free-memory value. */
    Status initKvCache(u64 free_gpu_bytes);

    /**
     * Medusa online path for stage ❹: skip profiling; the I/O buffers
     * and cache tensors were recreated by the allocation replay and are
     * re-bound here by address.
     */
    Status adoptBuffers(const ForwardBuffers &bufs, KvCache cache);

    /** ❺ Warm up + capture + instantiate decode graphs for all sizes. */
    Status captureDecodeGraphs();

    /**
     * Transactional-restore rollback: discard every loading-phase
     * effect — device allocations, loaded modules, instantiated graphs
     * (including partially-registered slots from a failed batch),
     * weights, tokenizer, KV cache and I/O buffers — leaving the
     * runtime as if freshly constructed with its original options. The
     * allocator is rebuilt with its original reuse seed and NO
     * observer (re-attach one before the next restore attempt). The
     * clock keeps running: time burned before the rollback is real
     * latency.
     */
    void rollbackToPristine();

    // Finer-grained pieces of stage ❺ used by Medusa's phases:

    /** One eager decode forwarding (the warm-up). */
    Status warmupDecode(u32 bs);

    /** Capture one decode graph (requires prior warm-up). */
    StatusOr<simcuda::CudaGraph> captureDecode(u32 bs);

    /**
     * Warm up and capture only the FIRST LAYER of the model — the
     * triggering-kernels of the paper's §5.2. Loads every module the
     * full graphs need (module granularity) at ~1/num_layers the cost.
     */
    StatusOr<simcuda::CudaGraph> captureFirstLayer();

    /** Register an instantiated graph for serving at batch size bs. */
    Status instantiateGraph(u32 bs, const simcuda::CudaGraph &graph);

    /**
     * Instantiate a batch of rebuilt graphs, strictly in the order
     * given. Instantiation mutates process state (clock, graph
     * registry), so parallel restore drivers funnel through this hook
     * after building the CudaGraphs concurrently — it pins the ordering
     * contract that keeps simulated time thread-count independent.
     *
     * First failure wins, and the slots this batch already registered
     * are unregistered before returning: a failed batch leaves the
     * graph table exactly as it found it, so a rolled-back restore
     * cannot leak partially-built graphs. @p fault, when set, injects
     * FaultPoint::kGraphInstantiate before each instantiation.
     */
    Status instantiateGraphs(
        const std::vector<std::pair<u32, const simcuda::CudaGraph *>>
            &ordered,
        FaultInjector *fault = nullptr);

    /**
     * Patch-path counterpart of instantiateGraphs: instantiate decode
     * graphs directly from relocation-patched image arrays, strictly in
     * the order given, with the same first-failure-wins + unregister
     * rollback contract and the same kGraphInstantiate fault point.
     */
    Status instantiatePatchedGraphs(
        const std::vector<
            std::pair<u32, simcuda::GpuProcess::PatchedGraphDesc>> &ordered,
        FaultInjector *fault = nullptr);

    bool hasGraph(u32 bs) const { return graphs_.count(bs) != 0; }
    std::size_t graphCount() const { return graphs_.size(); }

    /** The instantiated graph for bs (for lockstep TP replay). */
    StatusOr<const simcuda::GraphExec *> graphExec(u32 bs) const;

    /** Total node count across instantiated graphs (Table 1). */
    u64 totalGraphNodes() const;

    // ---- serving ----------------------------------------------------------

    /**
     * Greedy generation for one prompt; uses captured graphs when
     * available, eager decode otherwise.
     */
    StatusOr<std::vector<i32>> generate(const std::vector<i32> &prompt,
                                        u32 max_new_tokens);

    // ---- latency measurement (serving profiles) ---------------------------

    /**
     * Virtual seconds of one decode step at batch size @p bs: input
     * staging, forward (graph replay or eager), sampling and the D2H
     * sync — the per-step serving cost the cluster simulator uses.
     */
    StatusOr<f64> measureDecodeStepSec(u32 bs, bool use_graph);

    /**
     * Virtual seconds of one eager prefill of @p n_real_tokens (the
     * functional token count is scaled down accordingly).
     */
    StatusOr<f64> measurePrefillSec(u32 n_real_tokens);

    // ---- validation helpers (Medusa §4) -----------------------------------

    /**
     * Stage a deterministic decode state: bs sequences with fixed
     * tokens, positions and pre-filled KV contents.
     */
    Status stageValidationState(u32 bs);

    /** Run one eager decode and snapshot the logits buffer. */
    StatusOr<std::vector<f32>> eagerDecodeLogits(u32 bs);

    /** Replay the instantiated graph for bs and snapshot the logits. */
    StatusOr<std::vector<f32>> graphDecodeLogits(u32 bs);

    /** Replay an arbitrary graph exec and snapshot the logits. */
    StatusOr<std::vector<f32>>
    execAndReadLogits(const simcuda::GraphExec &exec, u32 bs);

  private:
    ForwardPass::Env forwardEnv();

    /** Write decode inputs for a batch of live sequences (padded). */
    Status stageDecodeInputs(const std::vector<Sequence *> &seqs,
                             u32 padded_bs);

    /** Read logits rows [0, bs) from the device. */
    StatusOr<std::vector<f32>> readLogits(u32 bs, u32 row_offset = 0);

    /** Launch argmax over one logits row span and read the token back. */
    StatusOr<i32> sampleToken(u32 row);

    /** Pick the smallest captured batch size >= n. */
    StatusOr<u32> graphBatchFor(u32 n) const;

    ModelConfig model_;
    /** Kept so rollbackToPristine reseeds the allocator identically. */
    u64 aslr_seed_;
    SimClock clock_;
    CostModel cost_storage_; // used when Options::cost == nullptr
    const CostModel *cost_;
    std::unique_ptr<simcuda::GpuProcess> process_;
    std::unique_ptr<simcuda::CachingAllocator> alloc_;
    EngineObserver *observer_;

    ModelWeights weights_;
    BpeTokenizer tokenizer_;
    bool tokenizer_loaded_ = false;
    ForwardBuffers bufs_;
    KvCache kv_;
    SemaphoreMap semaphores_;
    LmWorkspaceMap lm_workspace_;
    std::map<u32, simcuda::GraphExec> graphs_;
    bool structure_ready_ = false;
    bool weights_ready_ = false;
};

} // namespace medusa::llm

#endif // MEDUSA_LLM_RUNTIME_H
