#include "llm/tokenizer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace medusa::llm {

BpeTokenizer
BpeTokenizer::train(const std::string &corpus, u32 target_vocab)
{
    BpeTokenizer tok;
    tok.expansions_.resize(256);
    for (int b = 0; b < 256; ++b) {
        tok.expansions_[b] = std::string(1, static_cast<char>(b));
    }
    if (target_vocab <= 256) {
        return tok;
    }

    // Work sequence: the corpus as token ids, merged in place each round.
    std::vector<i32> seq(corpus.begin(), corpus.end());
    for (auto &v : seq) {
        v = static_cast<i32>(static_cast<u8>(v));
    }

    while (tok.vocabSize() < target_vocab && seq.size() >= 2) {
        // Count adjacent pairs.
        std::map<std::pair<i32, i32>, u32> counts;
        for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
            ++counts[{seq[i], seq[i + 1]}];
        }
        // Pick the most frequent pair (ties broken by pair order for
        // determinism).
        std::pair<i32, i32> best{};
        u32 best_count = 1; // require at least 2 occurrences
        for (const auto &[pair, count] : counts) {
            if (count > best_count) {
                best_count = count;
                best = pair;
            }
        }
        if (best_count <= 1) {
            break; // nothing repeats; no compression left
        }
        const i32 new_id = static_cast<i32>(tok.vocabSize());
        tok.merges_.push_back(best);
        tok.merge_to_id_[best] = new_id;
        tok.expansions_.push_back(tok.expansions_[best.first] +
                                  tok.expansions_[best.second]);
        // Apply the merge over the work sequence.
        std::vector<i32> next;
        next.reserve(seq.size());
        for (std::size_t i = 0; i < seq.size();) {
            if (i + 1 < seq.size() && seq[i] == best.first &&
                seq[i + 1] == best.second) {
                next.push_back(new_id);
                i += 2;
            } else {
                next.push_back(seq[i]);
                ++i;
            }
        }
        seq.swap(next);
    }
    return tok;
}

StatusOr<BpeTokenizer>
BpeTokenizer::fromMerges(const std::vector<std::pair<i32, i32>> &merges)
{
    BpeTokenizer tok;
    tok.expansions_.resize(256);
    for (int b = 0; b < 256; ++b) {
        tok.expansions_[b] = std::string(1, static_cast<char>(b));
    }
    for (const auto &pair : merges) {
        const i32 new_id = static_cast<i32>(tok.vocabSize());
        // A merge may only reference byte tokens or earlier merges.
        if (pair.first < 0 || pair.second < 0 || pair.first >= new_id ||
            pair.second >= new_id) {
            return invalidArgument(
                "merge " + std::to_string(new_id - 256) +
                " references out-of-range token id");
        }
        tok.merges_.push_back(pair);
        tok.merge_to_id_[pair] = new_id;
        tok.expansions_.push_back(
            tok.expansions_[static_cast<std::size_t>(pair.first)] +
            tok.expansions_[static_cast<std::size_t>(pair.second)]);
    }
    return tok;
}

std::vector<i32>
BpeTokenizer::encode(const std::string &text) const
{
    std::vector<i32> seq(text.begin(), text.end());
    for (auto &v : seq) {
        v = static_cast<i32>(static_cast<u8>(v));
    }
    // Iteratively apply the lowest-ranked (earliest-learned) applicable
    // merge — the canonical BPE encode.
    while (seq.size() >= 2) {
        i32 best_id = -1;
        std::size_t best_pos = 0;
        for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
            auto it = merge_to_id_.find({seq[i], seq[i + 1]});
            if (it != merge_to_id_.end() &&
                (best_id < 0 || it->second < best_id)) {
                best_id = it->second;
                best_pos = i;
            }
        }
        if (best_id < 0) {
            break;
        }
        // Merge every occurrence of this pair in one pass.
        const auto pair = merges_[static_cast<std::size_t>(best_id) - 256];
        std::vector<i32> next;
        next.reserve(seq.size());
        for (std::size_t i = 0; i < seq.size();) {
            if (i + 1 < seq.size() && seq[i] == pair.first &&
                seq[i + 1] == pair.second) {
                next.push_back(best_id);
                i += 2;
            } else {
                next.push_back(seq[i]);
                ++i;
            }
        }
        seq.swap(next);
        (void)best_pos;
    }
    return seq;
}

std::string
BpeTokenizer::decode(const std::vector<i32> &ids) const
{
    std::string out;
    for (i32 id : ids) {
        auto bytes = tokenBytes(id);
        MEDUSA_CHECK(bytes.isOk(), "decode of invalid token id " << id);
        out += *bytes;
    }
    return out;
}

StatusOr<std::string>
BpeTokenizer::tokenBytes(i32 id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= expansions_.size()) {
        return invalidArgument("token id out of range: " +
                               std::to_string(id));
    }
    return expansions_[static_cast<std::size_t>(id)];
}

std::string
syntheticCorpus(u64 seed, std::size_t approx_bytes)
{
    // A Zipf-ish vocabulary of synthetic words gives BPE realistic
    // repeated structure to learn from.
    static const char *const kSyllables[] = {
        "ser", "ver", "less", "ten", "sor", "gra", "ph",  "cud", "mod",
        "el",  "in",  "fer",  "ence", "ma", "ter", "ial", "ize", "la",
        "ten", "cy",  "ker",  "nel",  "cap", "tur", "ing", "tok", "en",
    };
    constexpr std::size_t kNumSyllables =
        sizeof(kSyllables) / sizeof(kSyllables[0]);

    Rng rng(seed);
    // Build a fixed word list; earlier words are sampled more often.
    std::vector<std::string> words;
    for (int w = 0; w < 160; ++w) {
        std::string word;
        const int parts = 1 + static_cast<int>(rng.nextBounded(3));
        for (int p = 0; p < parts; ++p) {
            word += kSyllables[rng.nextBounded(kNumSyllables)];
        }
        words.push_back(word);
    }

    std::string corpus;
    corpus.reserve(approx_bytes + 64);
    int sentence_len = 0;
    while (corpus.size() < approx_bytes) {
        // Zipf-like: index ~ floor(N * u^2) favours small indexes.
        const f64 u = rng.nextDouble();
        const auto idx = static_cast<std::size_t>(
            static_cast<f64>(words.size()) * u * u);
        corpus += words[std::min(idx, words.size() - 1)];
        if (++sentence_len >= 8 + static_cast<int>(rng.nextBounded(8))) {
            corpus += ". ";
            sentence_len = 0;
        } else {
            corpus += ' ';
        }
    }
    return corpus;
}

} // namespace medusa::llm
