/**
 * @file
 * Integration hooks the inference runtime exposes to Medusa.
 *
 * Medusa's recorder (offline phase) observes loading-phase stage
 * boundaries and the identities ("tags") of long-lived buffers — the
 * token-id/position/block-table inputs and the KV cache tensors — so it
 * can classify allocations and let the online phase re-bind those
 * buffers after the allocation-sequence replay.
 */

#ifndef MEDUSA_LLM_HOOKS_H
#define MEDUSA_LLM_HOOKS_H

#include <string>

#include "common/types.h"

namespace medusa::llm {

/** Loading-phase stages, in vLLM's execution order (§2.1 of the paper). */
enum class Stage {
    kStructInit = 0,
    kWeights,
    kTokenizer,
    kKvInit,
    kCapture,
    kServing,
};

const char *stageName(Stage stage);

/** Observer of engine-level events; implemented by Medusa's recorder. */
class EngineObserver
{
  public:
    virtual ~EngineObserver() = default;

    /** A loading-phase stage begins. */
    virtual void onStageBegin(Stage stage) { (void)stage; }

    /** A loading-phase stage ends. */
    virtual void onStageEnd(Stage stage) { (void)stage; }

    /** A long-lived buffer was allocated and given a stable tag. */
    virtual void
    onTagBuffer(const std::string &tag, DeviceAddr addr)
    {
        (void)tag;
        (void)addr;
    }
};

} // namespace medusa::llm

#endif // MEDUSA_LLM_HOOKS_H
