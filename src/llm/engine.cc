#include "llm/engine.h"

#include <algorithm>

namespace medusa::llm {

const char *
strategyName(Strategy strategy)
{
    switch (strategy) {
      case Strategy::kVllm: return "vLLM";
      case Strategy::kVllmAsync: return "vLLM+ASYNC";
      case Strategy::kNoCudaGraph: return "w/o CUDA GRAPH";
      case Strategy::kMedusa: return "Medusa";
      case Strategy::kDeferredCapture: return "deferred capture";
    }
    return "?";
}

f64
composeLoading(Strategy strategy, const StageTimes &t,
               const CostModel &cost)
{
    switch (strategy) {
      case Strategy::kVllm:
      case Strategy::kNoCudaGraph:
      case Strategy::kDeferredCapture:
        // Fully synchronous stages.
        return t.serialSum();
      case Strategy::kVllmAsync: {
        // Weights loading overlaps tokenizer + KV init. The profiling
        // forwarding's device traffic slows the async weight copies
        // (§7.3's Nsight observation), modelled as a multiplicative
        // interference factor.
        const f64 weights_async =
            t.weights * cost.weights_profiling_interference;
        return t.struct_init +
               std::max(weights_async, t.tokenizer + t.kv_init) +
               t.capture;
      }
      case Strategy::kMedusa:
        MEDUSA_PANIC("Medusa composition lives in src/medusa/restore");
    }
    return t.serialSum();
}

StatusOr<std::unique_ptr<BaselineEngine>>
BaselineEngine::coldStart(const Options &opts)
{
    ModelRuntime::Options ropts;
    ropts.model = opts.model;
    ropts.aslr_seed = opts.aslr_seed;
    ropts.cost = opts.cost;
    auto runtime = std::make_unique<ModelRuntime>(ropts);
    ModelRuntime &rt = *runtime;
    const CostModel &cost = rt.process().cost();

    std::unique_ptr<BaselineEngine> engine(
        new BaselineEngine(opts.strategy, opts.aslr_seed,
                           std::move(runtime)));
    ColdStartReport &report = engine->report_;
    report.strategy = strategyName(opts.strategy);
    StageTimes &t = report.times;
    t.runtime_init = opts.warm_container
                         ? cost.runtime_init_warm_ms / 1e3
                         : cost.runtime_init_cold_ms / 1e3;

    SimClock &clock = rt.clock();
    TraceRecorder rec(&clock);
    f64 mark = clock.nowSec();
    auto lap = [&clock, &mark]() {
        const f64 now = clock.nowSec();
        const f64 d = now - mark;
        mark = now;
        return d;
    };

    {
        Span s(&rec, "cold_start.struct_init", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.initStructure());
    }
    t.struct_init = lap();

    {
        Span s(&rec, "cold_start.weights", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.loadWeights());
    }
    t.weights = lap();

    {
        Span s(&rec, "cold_start.tokenizer", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.loadTokenizer());
    }
    t.tokenizer = lap();

    {
        Span s(&rec, "cold_start.kv_init", "stage");
        MEDUSA_ASSIGN_OR_RETURN(u64 free_bytes, rt.profileFreeMemory());
        MEDUSA_RETURN_IF_ERROR(rt.initKvCache(free_bytes));
    }
    t.kv_init = lap();

    if (opts.strategy != Strategy::kNoCudaGraph &&
        opts.strategy != Strategy::kDeferredCapture) {
        Span s(&rec, "cold_start.capture", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.captureDecodeGraphs());
        s.end();
        t.capture = lap();
    }

    t.loading = composeLoading(opts.strategy, t, cost);
    report.outcome = ColdStartOutcome::kColdStart;
    report.spans = rec.events();
    if (opts.trace != nullptr) {
        opts.trace->appendAll(report.spans);
    }
    return engine;
}

} // namespace medusa::llm
