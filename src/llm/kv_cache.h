/**
 * @file
 * Paged KV cache: block manager and per-layer cache tensors.
 *
 * Stage ❹ of the loading phase determines the free GPU memory available
 * for the KV cache (via a profiling forwarding in vanilla vLLM, via the
 * materialized value in Medusa), then reserves per-layer K and V tensors
 * and manages them as fixed-size blocks.
 */

#ifndef MEDUSA_LLM_KV_CACHE_H
#define MEDUSA_LLM_KV_CACHE_H

#include <vector>

#include "common/status.h"
#include "llm/model_config.h"
#include "simcuda/caching_allocator.h"

namespace medusa::llm {

/**
 * Allocates and frees functional cache blocks. Block 0 is reserved as
 * the dummy block that padding slots of fixed-batch graph replays write
 * into.
 */
class BlockManager
{
  public:
    explicit BlockManager(u32 num_blocks) : free_stack_()
    {
        MEDUSA_CHECK(num_blocks >= 2, "need at least a dummy + one block");
        total_ = num_blocks;
        // Stack of free ids, excluding the dummy block 0; popping yields
        // ascending ids first for determinism.
        for (u32 b = num_blocks; b-- > 1;) {
            free_stack_.push_back(static_cast<i32>(b));
        }
    }

    /** Reserve one block; error when the pool is exhausted. */
    StatusOr<i32>
    allocate()
    {
        if (free_stack_.empty()) {
            return outOfMemory("KV block pool exhausted");
        }
        const i32 b = free_stack_.back();
        free_stack_.pop_back();
        return b;
    }

    /** Return a block to the pool. */
    Status
    free(i32 block)
    {
        if (block <= 0 || static_cast<u32>(block) >= total_) {
            return invalidArgument("free of invalid KV block");
        }
        free_stack_.push_back(block);
        return Status::ok();
    }

    u32 totalBlocks() const { return total_; }
    u32 freeBlocks() const { return static_cast<u32>(free_stack_.size()); }

  private:
    u32 total_ = 0;
    std::vector<i32> free_stack_;
};

/** The reserved cache tensors plus the functional block manager. */
struct KvCache
{
    /** Per-layer K / V tensor base addresses. */
    std::vector<DeviceAddr> k_layers;
    std::vector<DeviceAddr> v_layers;
    /**
     * The profiling result: number of *real* KV blocks that fit in the
     * free GPU memory. This is the value Medusa materializes (§6).
     */
    u64 real_num_blocks = 0;
    /** Real bytes reserved (accounting). */
    u64 logical_bytes = 0;
    /** Functional block pool. */
    BlockManager blocks{2};

    bool initialized() const { return !k_layers.empty(); }
};

/**
 * Reserve the cache tensors given the profiled (or materialized) free
 * GPU memory, using gpu_memory_utilization=0.9 of it as vLLM does.
 */
StatusOr<KvCache> allocateKvCache(simcuda::CachingAllocator &alloc,
                                  const ModelConfig &config,
                                  u64 free_gpu_bytes);

} // namespace medusa::llm

#endif // MEDUSA_LLM_KV_CACHE_H
