#include "llm/model_config.h"

namespace medusa::llm {

const char *
archName(ModelArch arch)
{
    switch (arch) {
      case ModelArch::kLlama: return "llama";
      case ModelArch::kQwen: return "qwen";
      case ModelArch::kFalcon: return "falcon";
    }
    return "?";
}

std::vector<u32>
captureBatchSizes()
{
    std::vector<u32> sizes = {1, 2, 4};
    for (u32 bs = 8; bs <= 256; bs += 8) {
        sizes.push_back(bs);
    }
    return sizes; // 3 + 32 = 35 sizes, as in vLLM.
}

namespace {

ModelConfig
makeModel(const std::string &name, ModelArch arch, u32 layers, u32 hidden,
          u32 heads, u32 kv_heads, u32 intermediate, u32 vocab, u64 seed)
{
    ModelConfig m;
    m.name = name;
    m.arch = arch;
    m.num_layers = layers;
    m.hidden = hidden;
    m.heads = heads;
    m.kv_heads = kv_heads;
    m.head_dim = hidden / heads;
    m.intermediate = intermediate;
    m.vocab = vocab;
    m.seed = seed;
    // Functional GQA/MQA ratio mirrors the real one where possible.
    if (kv_heads == heads) {
        m.func.kv_heads = m.func.heads; // MHA
    } else if (kv_heads == 1) {
        m.func.kv_heads = 1; // MQA (Falcon)
    } else {
        m.func.kv_heads = 2; // GQA (Yi)
    }
    return m;
}

} // namespace

std::vector<ModelConfig>
modelZoo()
{
    // Real dimensions from the published HuggingFace configs of the ten
    // models in the paper's Table 1.
    std::vector<ModelConfig> zoo;
    zoo.push_back(makeModel("Falcon-7B", ModelArch::kFalcon, 32, 4544, 71,
                            1, 4 * 4544, 65024, 101));
    zoo.push_back(makeModel("Llama2-7B", ModelArch::kLlama, 32, 4096, 32,
                            32, 11008, 32000, 102));
    zoo.push_back(makeModel("Llama2-13B", ModelArch::kLlama, 40, 5120, 40,
                            40, 13824, 32000, 103));
    zoo.push_back(makeModel("Qwen1.5-0.5B", ModelArch::kQwen, 24, 1024, 16,
                            16, 2816, 151936, 104));
    zoo.push_back(makeModel("Qwen1.5-1.8B", ModelArch::kQwen, 24, 2048, 16,
                            16, 5504, 151936, 105));
    zoo.push_back(makeModel("Qwen1.5-4B", ModelArch::kQwen, 40, 2560, 20,
                            20, 6912, 151936, 106));
    zoo.push_back(makeModel("Qwen1.5-7B", ModelArch::kQwen, 32, 4096, 32,
                            32, 11008, 151936, 107));
    zoo.push_back(makeModel("Qwen1.5-14B", ModelArch::kQwen, 40, 5120, 40,
                            40, 13696, 152064, 108));
    zoo.push_back(makeModel("Yi-6B", ModelArch::kLlama, 32, 4096, 32, 4,
                            11008, 64000, 109));
    zoo.push_back(makeModel("Yi-9B", ModelArch::kLlama, 48, 4096, 32, 4,
                            11008, 64000, 110));
    return zoo;
}

StatusOr<ModelConfig>
findModel(const std::string &name)
{
    for (const ModelConfig &m : modelZoo()) {
        if (m.name == name) {
            return m;
        }
    }
    return notFound("no model named " + name + " in the zoo");
}

} // namespace medusa::llm
