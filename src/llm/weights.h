/**
 * @file
 * Model tensor inventory, structure initialization, and weight loading.
 *
 * Stage ❶ (structure init) instantiates every weight tensor in a strict,
 * deterministic order — the property Medusa's indirect-index analysis
 * relies on. Stage ❷ (weights loading) fills the functional contents
 * from the model's seed (identical across process launches, as real
 * weight files are) and charges the simulated SSD-array read time of the
 * *real* byte sizes.
 */

#ifndef MEDUSA_LLM_WEIGHTS_H
#define MEDUSA_LLM_WEIGHTS_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "llm/model_config.h"
#include "simcuda/caching_allocator.h"

namespace medusa::llm {

/** What kind of values a tensor holds (decides synthetic content). */
enum class TensorContent {
    kMatrix,    ///< projection weights ~ U(-1,1)/sqrt(fan_in)
    kNormWeight,///< ~1.0
    kBias,      ///< ~0
    kEmbedding, ///< ~U(-0.5, 0.5)
};

/**
 * How a tensor-parallel rank's shard is cut out of the full functional
 * matrix (row-major [full_rows x full_cols]): the union of row_ranges,
 * restricted to [col_begin, col_end). Ranks generate the identical full
 * matrix from the tensor's seed and gather their slice, so shards
 * compose exactly into the single-GPU weights.
 */
struct ShardSpec
{
    u64 full_rows = 0;
    u64 full_cols = 0;
    std::vector<std::pair<u64, u64>> row_ranges;
    u64 col_begin = 0;
    u64 col_end = 0;
};

/** Static description of one weight tensor. */
struct TensorSpec
{
    std::string name;
    /** -1 for global tensors, else layer index. */
    i32 layer = -1;
    /** Real bytes (fp16) — accounting and load timing. */
    u64 logical_bytes = 0;
    /** Functional f32 element count actually stored. */
    u64 func_elems = 0;
    /** Fan-in of the functional matrix (for init scaling). */
    u64 func_fan_in = 1;
    TensorContent content = TensorContent::kMatrix;
    /** Present when the tensor is a tensor-parallel shard. */
    std::optional<ShardSpec> shard;
};

/** Device addresses of one decoder layer's tensors (0 = absent). */
struct LayerWeights
{
    DeviceAddr input_norm = 0;
    DeviceAddr input_norm_bias = 0; // Falcon only
    DeviceAddr qkv_w = 0;
    DeviceAddr qkv_b = 0; // Qwen only
    DeviceAddr o_proj = 0;
    DeviceAddr post_norm = 0; // Llama/Qwen only
    DeviceAddr gate_up = 0;   // Llama/Qwen
    DeviceAddr down = 0;      // Llama/Qwen
    DeviceAddr mlp_up = 0;    // Falcon
    DeviceAddr mlp_down = 0;  // Falcon
};

/** The whole model's tensors, in allocation order. */
struct ModelWeights
{
    DeviceAddr embed = 0;
    DeviceAddr final_norm = 0;
    DeviceAddr final_norm_bias = 0; // Falcon only
    DeviceAddr lm_head = 0;
    std::vector<LayerWeights> layers;

    /** Flat views parallel to buildTensorSpecs() order. */
    std::vector<TensorSpec> specs;
    std::vector<DeviceAddr> addrs;

    u64 total_logical_bytes = 0;
    u32 tensorCount() const { return static_cast<u32>(specs.size()); }
};

/** The deterministic tensor inventory of a model. */
std::vector<TensorSpec> buildTensorSpecs(const ModelConfig &config);

/**
 * Stage ❶: allocate every tensor (in spec order) through the caching
 * allocator and wire up the role pointers.
 */
StatusOr<ModelWeights> initModelStructure(simcuda::CachingAllocator &alloc,
                                          const ModelConfig &config);

/**
 * Stage ❷: generate deterministic functional contents and copy them to
 * the device, charging SSD read time for the real byte sizes.
 */
Status loadModelWeights(simcuda::GpuProcess &process,
                        const ModelConfig &config, ModelWeights &weights);

} // namespace medusa::llm

#endif // MEDUSA_LLM_WEIGHTS_H
