#include "llm/weights.h"

#include <cmath>

#include "common/rng.h"

namespace medusa::llm {

namespace {

constexpr u64 kFp16 = 2; // real weights are fp16

/** Append one spec with both real and functional sizing. */
void
addSpec(std::vector<TensorSpec> &specs, const std::string &name, i32 layer,
        u64 real_elems, u64 func_elems, u64 func_fan_in,
        TensorContent content,
        std::optional<ShardSpec> shard = std::nullopt)
{
    TensorSpec s;
    s.name = name;
    s.layer = layer;
    s.logical_bytes = real_elems * kFp16;
    s.func_elems = func_elems;
    s.func_fan_in = func_fan_in;
    s.content = content;
    s.shard = std::move(shard);
    specs.push_back(std::move(s));
}

/** Element count selected by a shard spec. */
u64
shardElems(const ShardSpec &shard)
{
    u64 rows = 0;
    for (const auto &[begin, end] : shard.row_ranges) {
        rows += end - begin;
    }
    return rows * (shard.col_end - shard.col_begin);
}

/** Column-parallel shard: this rank's row ranges, all columns. */
ShardSpec
rowShard(u64 full_rows, u64 full_cols,
         std::vector<std::pair<u64, u64>> ranges)
{
    ShardSpec s;
    s.full_rows = full_rows;
    s.full_cols = full_cols;
    s.row_ranges = std::move(ranges);
    s.col_begin = 0;
    s.col_end = full_cols;
    return s;
}

/** Row-parallel shard: all rows, this rank's column range. */
ShardSpec
colShard(u64 full_rows, u64 full_cols, u64 col_begin, u64 col_end)
{
    ShardSpec s;
    s.full_rows = full_rows;
    s.full_cols = full_cols;
    s.row_ranges = {{0, full_rows}};
    s.col_begin = col_begin;
    s.col_end = col_end;
    return s;
}

/**
 * The fused-QKV row ranges of one rank: its query heads, plus its KV
 * head slice (or the full replicated KV for MQA).
 */
std::vector<std::pair<u64, u64>>
qkvRowRanges(u64 q_full, u64 kv_full, u64 q_local, u64 kv_local,
             u32 rank, bool kv_sharded)
{
    std::vector<std::pair<u64, u64>> ranges;
    ranges.emplace_back(rank * q_local, (rank + 1) * q_local);
    if (kv_sharded) {
        ranges.emplace_back(q_full + rank * kv_local,
                            q_full + (rank + 1) * kv_local);
        ranges.emplace_back(q_full + kv_full + rank * kv_local,
                            q_full + kv_full + (rank + 1) * kv_local);
    } else {
        ranges.emplace_back(q_full, q_full + kv_full);
        ranges.emplace_back(q_full + kv_full, q_full + 2 * kv_full);
    }
    return ranges;
}

} // namespace

std::vector<TensorSpec>
buildTensorSpecs(const ModelConfig &m)
{
    std::vector<TensorSpec> specs;
    const FuncDims &f = m.func;
    const u64 h_r = m.hidden;
    const u64 kv_r = m.kvDim();
    const u64 h_f = f.hidden;
    const u64 kv_f = f.kvDim();

    const bool tp = m.tp_world > 1;
    MEDUSA_CHECK(m.heads % m.tp_world == 0 &&
                     m.func.heads % m.tp_world == 0 &&
                     m.intermediate % m.tp_world == 0 &&
                     m.func.intermediate % m.tp_world == 0,
                 "model dimensions not divisible by tp_world");
    const bool kv_sharded = m.kv_heads >= m.tp_world;
    // Per-rank (local) dimensions, real and functional.
    const u64 q_r_l = m.localQDim();
    const u64 kv_r_l = m.localKvDim();
    const u64 inter_r_l = m.localIntermediate();
    const u64 q_f_l = m.funcLocalQDim();
    const u64 kv_f_l = m.funcLocalKvDim();
    const u64 inter_f_l = m.funcLocalIntermediate();

    addSpec(specs, "embed_tokens", -1,
            static_cast<u64>(m.vocab) * h_r,
            static_cast<u64>(f.vocab) * h_f, h_f,
            TensorContent::kEmbedding);

    for (u32 l = 0; l < m.num_layers; ++l) {
        const std::string p = "layers." + std::to_string(l) + ".";
        const i32 li = static_cast<i32>(l);
        // Shards for the attention/MLP projections of this rank.
        std::optional<ShardSpec> qkv_shard, qkv_b_shard, o_shard,
            gate_up_shard, down_shard, mlp_up_shard;
        if (tp) {
            auto qkv_rows = qkvRowRanges(h_f, kv_f, q_f_l, kv_f_l,
                                         m.tp_rank, kv_sharded);
            qkv_shard = rowShard(h_f + 2 * kv_f, h_f, qkv_rows);
            qkv_b_shard = rowShard(h_f + 2 * kv_f, 1, qkv_rows);
            o_shard = colShard(h_f, h_f, m.tp_rank * q_f_l,
                               (m.tp_rank + 1) * q_f_l);
            gate_up_shard = rowShard(
                2ull * f.intermediate, h_f,
                {{m.tp_rank * inter_f_l, (m.tp_rank + 1) * inter_f_l},
                 {f.intermediate + m.tp_rank * inter_f_l,
                  f.intermediate + (m.tp_rank + 1) * inter_f_l}});
            down_shard = colShard(h_f, f.intermediate,
                                  m.tp_rank * inter_f_l,
                                  (m.tp_rank + 1) * inter_f_l);
            mlp_up_shard = rowShard(
                f.intermediate, h_f,
                {{m.tp_rank * inter_f_l,
                  (m.tp_rank + 1) * inter_f_l}});
        }
        const u64 qkv_real =
            tp ? (q_r_l + 2 * kv_r_l) * h_r : (h_r + 2 * kv_r) * h_r;
        const u64 qkv_func = tp ? shardElems(*qkv_shard)
                                : (h_f + 2 * kv_f) * h_f;
        const u64 o_real = tp ? h_r * q_r_l : h_r * h_r;
        const u64 o_func = tp ? shardElems(*o_shard) : h_f * h_f;
        switch (m.arch) {
          case ModelArch::kLlama:
          case ModelArch::kQwen:
            addSpec(specs, p + "input_norm", li, h_r, h_f, 1,
                    TensorContent::kNormWeight);
            addSpec(specs, p + "qkv_w", li, qkv_real * 1, qkv_func, h_f,
                    TensorContent::kMatrix, qkv_shard);
            if (m.arch == ModelArch::kQwen) {
                addSpec(specs, p + "qkv_b", li,
                        tp ? q_r_l + 2 * kv_r_l : h_r + 2 * kv_r,
                        tp ? shardElems(*qkv_b_shard)
                           : h_f + 2 * kv_f,
                        1, TensorContent::kBias, qkv_b_shard);
            }
            addSpec(specs, p + "o_proj", li, o_real, o_func, h_f,
                    TensorContent::kMatrix, o_shard);
            addSpec(specs, p + "post_norm", li, h_r, h_f, 1,
                    TensorContent::kNormWeight);
            addSpec(specs, p + "gate_up", li,
                    tp ? 2ull * inter_r_l * h_r
                       : 2ull * m.intermediate * h_r,
                    tp ? shardElems(*gate_up_shard)
                       : 2ull * f.intermediate * h_f,
                    h_f, TensorContent::kMatrix, gate_up_shard);
            addSpec(specs, p + "down", li,
                    tp ? static_cast<u64>(h_r) * inter_r_l
                       : static_cast<u64>(h_r) * m.intermediate,
                    tp ? shardElems(*down_shard)
                       : static_cast<u64>(h_f) * f.intermediate,
                    f.intermediate, TensorContent::kMatrix, down_shard);
            break;
          case ModelArch::kFalcon:
            addSpec(specs, p + "ln_w", li, h_r, h_f, 1,
                    TensorContent::kNormWeight);
            addSpec(specs, p + "ln_b", li, h_r, h_f, 1,
                    TensorContent::kBias);
            addSpec(specs, p + "qkv_w", li, qkv_real, qkv_func, h_f,
                    TensorContent::kMatrix, qkv_shard);
            addSpec(specs, p + "dense", li, o_real, o_func, h_f,
                    TensorContent::kMatrix, o_shard);
            addSpec(specs, p + "mlp_up", li,
                    tp ? static_cast<u64>(inter_r_l) * h_r
                       : static_cast<u64>(m.intermediate) * h_r,
                    tp ? shardElems(*mlp_up_shard)
                       : static_cast<u64>(f.intermediate) * h_f,
                    h_f, TensorContent::kMatrix, mlp_up_shard);
            addSpec(specs, p + "mlp_down", li,
                    tp ? static_cast<u64>(h_r) * inter_r_l
                       : static_cast<u64>(h_r) * m.intermediate,
                    tp ? shardElems(*down_shard)
                       : static_cast<u64>(h_f) * f.intermediate,
                    f.intermediate, TensorContent::kMatrix, down_shard);
            break;
        }
    }

    addSpec(specs, "final_norm", -1, h_r, h_f, 1,
            TensorContent::kNormWeight);
    if (m.arch == ModelArch::kFalcon) {
        addSpec(specs, "final_norm_bias", -1, h_r, h_f, 1,
                TensorContent::kBias);
    }
    addSpec(specs, "lm_head", -1, static_cast<u64>(m.vocab) * h_r,
            static_cast<u64>(f.vocab) * h_f, h_f, TensorContent::kMatrix);
    return specs;
}

StatusOr<ModelWeights>
initModelStructure(simcuda::CachingAllocator &alloc, const ModelConfig &m)
{
    ModelWeights weights;
    weights.specs = buildTensorSpecs(m);
    weights.layers.resize(m.num_layers);
    weights.addrs.reserve(weights.specs.size());

    for (const TensorSpec &spec : weights.specs) {
        MEDUSA_ASSIGN_OR_RETURN(
            DeviceAddr addr,
            alloc.allocate(spec.logical_bytes,
                           spec.func_elems * sizeof(f32)));
        weights.addrs.push_back(addr);
        weights.total_logical_bytes += spec.logical_bytes;

        // Wire the role pointer.
        const std::string &n = spec.name;
        if (spec.layer < 0) {
            if (n == "embed_tokens") {
                weights.embed = addr;
            } else if (n == "final_norm") {
                weights.final_norm = addr;
            } else if (n == "final_norm_bias") {
                weights.final_norm_bias = addr;
            } else if (n == "lm_head") {
                weights.lm_head = addr;
            }
            continue;
        }
        LayerWeights &lw = weights.layers.at(
            static_cast<std::size_t>(spec.layer));
        const std::string leaf = n.substr(n.rfind('.') + 1);
        if (leaf == "input_norm" || leaf == "ln_w") {
            lw.input_norm = addr;
        } else if (leaf == "ln_b") {
            lw.input_norm_bias = addr;
        } else if (leaf == "qkv_w") {
            lw.qkv_w = addr;
        } else if (leaf == "qkv_b") {
            lw.qkv_b = addr;
        } else if (leaf == "o_proj" || leaf == "dense") {
            lw.o_proj = addr;
        } else if (leaf == "post_norm") {
            lw.post_norm = addr;
        } else if (leaf == "gate_up") {
            lw.gate_up = addr;
        } else if (leaf == "down") {
            lw.down = addr;
        } else if (leaf == "mlp_up") {
            lw.mlp_up = addr;
        } else if (leaf == "mlp_down") {
            lw.mlp_down = addr;
        } else {
            return internalError("unknown tensor leaf name " + leaf);
        }
    }
    return weights;
}

Status
loadModelWeights(simcuda::GpuProcess &process, const ModelConfig &m,
                 ModelWeights &weights)
{
    std::vector<f32> staging;
    std::vector<f32> full;
    for (std::size_t i = 0; i < weights.specs.size(); ++i) {
        const TensorSpec &spec = weights.specs[i];
        // Deterministic per-tensor contents: the same seed yields the
        // same "weight file" in every process launch (and on every
        // tensor-parallel rank, which then gathers its shard).
        Rng rng(m.seed * 0x10001ull + i * 7919ull);
        const u64 gen_elems =
            spec.shard ? spec.shard->full_rows * spec.shard->full_cols
                       : spec.func_elems;
        full.resize(gen_elems);
        const f32 matrix_scale =
            1.0f / std::sqrt(static_cast<f32>(spec.func_fan_in));
        for (auto &v : full) {
            switch (spec.content) {
              case TensorContent::kMatrix:
                v = rng.nextSymmetricFloat() * matrix_scale;
                break;
              case TensorContent::kNormWeight:
                v = 1.0f + 0.05f * rng.nextSymmetricFloat();
                break;
              case TensorContent::kBias:
                v = 0.01f * rng.nextSymmetricFloat();
                break;
              case TensorContent::kEmbedding:
                v = 0.5f * rng.nextSymmetricFloat();
                break;
            }
        }
        if (spec.shard) {
            // Gather this rank's slice of the full matrix.
            const ShardSpec &sh = *spec.shard;
            staging.clear();
            staging.reserve(spec.func_elems);
            for (const auto &[row_begin, row_end] : sh.row_ranges) {
                for (u64 row = row_begin; row < row_end; ++row) {
                    for (u64 col = sh.col_begin; col < sh.col_end;
                         ++col) {
                        staging.push_back(
                            full[row * sh.full_cols + col]);
                    }
                }
            }
            MEDUSA_CHECK(staging.size() == spec.func_elems,
                         "shard gather size mismatch for " << spec.name);
        } else {
            staging = full;
        }
        // Charge the storage read of the *real* bytes. The SSD-array
        // bandwidth constant subsumes the PCIe hop (the paper's observed
        // effective ~19 GB/s end-to-end path), so the device copy below
        // charges nothing extra.
        process.clock().advance(process.cost().ssdReadTime(
            static_cast<f64>(spec.logical_bytes)));
        MEDUSA_RETURN_IF_ERROR(process.memcpyH2D(
            weights.addrs[i], staging.data(),
            spec.func_elems * sizeof(f32), /*logical_bytes=*/0));
    }
    return Status::ok();
}

} // namespace medusa::llm
