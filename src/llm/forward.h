/**
 * @file
 * The model forward pass: emits the kernel launch sequence of one
 * prefill or decode forwarding onto a stream.
 *
 * This is the "host code" whose control flow the paper's Challenge I
 * hinges on: buffers are allocated in a strict order and kernels are
 * launched against the returned addresses, so the i-th data pointer
 * correlates with the i-th buffer allocation. Running the same pass
 * under stream capture yields the CUDA graph for that batch size.
 *
 * Every launch carries a TimingInfo computed from the model's *real*
 * dimensions, while the functional computation uses the scaled FuncDims
 * geometry (see model_config.h).
 */

#ifndef MEDUSA_LLM_FORWARD_H
#define MEDUSA_LLM_FORWARD_H

#include <map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "llm/hooks.h"
#include "llm/kv_cache.h"
#include "llm/model_config.h"
#include "llm/weights.h"
#include "simcuda/caching_allocator.h"

namespace medusa::llm {

/**
 * Long-lived I/O buffers shared by all forwardings (and by all captured
 * graphs, as in vLLM): the engine writes inputs into them before each
 * step and reads logits/samples back.
 */
struct ForwardBuffers
{
    DeviceAddr token_ids = 0;
    DeviceAddr positions = 0;
    DeviceAddr seq_starts = 0;
    DeviceAddr slot_mapping = 0;
    DeviceAddr block_tables = 0;
    DeviceAddr seq_lens = 0;
    DeviceAddr logits = 0;
    DeviceAddr sampled = 0;

    u32 max_bs = 256;
    u32 max_tokens = 256;
    u32 max_blocks_per_seq = 0;

    bool initialized() const { return token_ids != 0; }
};

/**
 * Allocate the I/O buffers (stage ❹ start, before any capture — they
 * are therefore classified as "allocated before capturing" by Medusa
 * and need no content materialization). Tags each buffer through the
 * observer so Medusa's online phase can re-bind them after replay.
 */
StatusOr<ForwardBuffers>
allocateForwardBuffers(simcuda::CachingAllocator &alloc,
                       const ModelConfig &config, EngineObserver *observer);

/** Per-layer split-K GEMM semaphore workspaces (permanent buffers). */
using SemaphoreMap = std::map<u32, std::pair<DeviceAddr, DeviceAddr>>;

/**
 * Per-batch-size batched-LM-head workspace: a persistent final-norm
 * output buffer and a device pointer-array buffer holding
 * [norm_buf, lm_head_weights, logits] — the §8 indirect-pointer case.
 */
using LmWorkspaceMap = std::map<u32, std::pair<DeviceAddr, DeviceAddr>>;

/**
 * Stateless emitter of forward-pass kernel sequences; see file comment.
 */
class ForwardPass
{
  public:
    struct Env
    {
        simcuda::GpuProcess *process = nullptr;
        simcuda::CachingAllocator *alloc = nullptr;
        const ModelConfig *model = nullptr;
        const ModelWeights *weights = nullptr;
        KvCache *kv = nullptr;
        const ForwardBuffers *bufs = nullptr;
        /** Owned by the runtime; lazily filled by decode passes. */
        SemaphoreMap *semaphores = nullptr;
        /** Owned by the runtime; used when batched_lm_head is set. */
        LmWorkspaceMap *lm_workspace = nullptr;
    };

    explicit ForwardPass(const Env &env);

    /**
     * One decode step over a (padded) batch of @p bs single-token
     * sequences, covering layers [layer_begin, layer_end).
     * @param with_embed_head include the embedding and the final
     *        norm + LM head (false when capturing a middle slice).
     */
    Status decode(simcuda::Stream &stream, u32 bs, u32 layer_begin,
                  u32 layer_end, bool with_embed_head);

    /** Full-model decode step. */
    Status
    decodeFull(simcuda::Stream &stream, u32 bs)
    {
        return decode(stream, bs, 0, model_->num_layers, true);
    }

    /**
     * Eager prefill of @p n_func functional tokens across @p bs
     * sequences. @p n_real is the real token count for timing.
     */
    Status prefill(simcuda::Stream &stream, u32 bs, u32 n_func,
                   u32 n_real);

    /** Expected node count of a decode graph at batch size @p bs. */
    static u64 decodeNodeCount(const ModelConfig &model, u32 bs);

    /** Batch sizes at which decode attention uses the split variant. */
    static bool usesAttnSplit(u32 bs) { return bs >= 64; }

  private:
    /** Allocate a tracked temp buffer (freed by releaseTemps). */
    StatusOr<DeviceAddr> temp(u64 func_bytes, u64 logical_bytes);

    /** Free all tracked temps in LIFO order. */
    Status releaseTemps();

    /** Get or lazily create the split-K semaphores of a layer. */
    StatusOr<std::pair<DeviceAddr, DeviceAddr>> semaphores(u32 layer);

    /** Get or lazily create the batched-LM-head workspace for bs. */
    StatusOr<std::pair<DeviceAddr, DeviceAddr>> lmWorkspace(u32 bs);

    simcuda::GpuProcess *process_;
    simcuda::CachingAllocator *alloc_;
    const ModelConfig *model_;
    const ModelWeights *weights_;
    KvCache *kv_;
    const ForwardBuffers *bufs_;
    SemaphoreMap *semaphores_;
    LmWorkspaceMap *lm_workspace_;
    std::vector<DeviceAddr> temps_;
};

} // namespace medusa::llm

#endif // MEDUSA_LLM_FORWARD_H
