#include "llm/forward.h"

#include <cmath>

#include "simcuda/kernels/builtin.h"

namespace medusa::llm {

using simcuda::BuiltinKernels;
using simcuda::ParamsBuilder;
using simcuda::Stream;

namespace {

constexpr f32 kNormEps = 1e-5f;
constexpr f32 kRopeTheta = 10000.0f;
/** Representative real context length for decode-attention timing. */
constexpr f64 kRepresentativeCtx = 256.0;
/** Prefix of the stream-tag decoy constant (see paged attention). */
constexpr u64 kStreamTagPrefix = 0x7fabull << 32;

/** Timing of a GEMM with real dims [n x k] x [k x out]. */
TimingInfo
gemmTiming(f64 n, f64 out, f64 k)
{
    TimingInfo t;
    t.flops = 2.0 * n * out * k;
    t.bytes = 2.0 * out * k + 2.0 * n * (k + out);
    return t;
}

/** Timing of an elementwise/norm op touching n x width reals twice. */
TimingInfo
elementwiseTiming(f64 n, f64 width)
{
    TimingInfo t;
    t.flops = 8.0 * n * width;
    t.bytes = 2.0 * 2.0 * n * width;
    return t;
}

} // namespace

StatusOr<ForwardBuffers>
allocateForwardBuffers(simcuda::CachingAllocator &alloc,
                       const ModelConfig &m, EngineObserver *observer)
{
    ForwardBuffers b;
    const FuncDims &f = m.func;
    b.max_bs = 256;
    b.max_tokens = f.max_batched_tokens;
    b.max_blocks_per_seq = (f.max_seq + f.block_size - 1) / f.block_size;

    const u32 max_n = std::max(b.max_bs, b.max_tokens);
    auto tag = [&](const char *name,
                   StatusOr<DeviceAddr> addr) -> StatusOr<DeviceAddr> {
        if (addr.isOk() && observer != nullptr) {
            observer->onTagBuffer(name, *addr);
        }
        return addr;
    };

    // i32 inputs: logical size is the real 4-byte element count; the
    // functional backing matches (these buffers are not scaled).
    MEDUSA_ASSIGN_OR_RETURN(
        b.token_ids,
        tag("token_ids", alloc.allocate(max_n * 4ull, max_n * 4ull)));
    MEDUSA_ASSIGN_OR_RETURN(
        b.positions,
        tag("positions", alloc.allocate(max_n * 4ull, max_n * 4ull)));
    MEDUSA_ASSIGN_OR_RETURN(
        b.seq_starts, tag("seq_starts", alloc.allocate((b.max_bs + 1) * 4ull,
                                                       (b.max_bs + 1) * 4ull)));
    MEDUSA_ASSIGN_OR_RETURN(
        b.slot_mapping,
        tag("slot_mapping", alloc.allocate(max_n * 4ull, max_n * 4ull)));
    const u64 table_elems =
        static_cast<u64>(b.max_bs) * b.max_blocks_per_seq;
    MEDUSA_ASSIGN_OR_RETURN(
        b.block_tables, tag("block_tables", alloc.allocate(
                                table_elems * 4, table_elems * 4)));
    MEDUSA_ASSIGN_OR_RETURN(
        b.seq_lens,
        tag("seq_lens", alloc.allocate(b.max_bs * 4ull, b.max_bs * 4ull)));
    // Logits: real vocab x fp16 logically, functional vocab x f32.
    MEDUSA_ASSIGN_OR_RETURN(
        b.logits,
        tag("logits",
            alloc.allocate(static_cast<u64>(max_n) * m.vocab * 2,
                           static_cast<u64>(max_n) * f.vocab * 4)));
    MEDUSA_ASSIGN_OR_RETURN(
        b.sampled,
        tag("sampled", alloc.allocate(b.max_bs * 4ull, b.max_bs * 4ull)));
    return b;
}

ForwardPass::ForwardPass(const Env &env)
    : process_(env.process),
      alloc_(env.alloc),
      model_(env.model),
      weights_(env.weights),
      kv_(env.kv),
      bufs_(env.bufs),
      semaphores_(env.semaphores),
      lm_workspace_(env.lm_workspace)
{
    MEDUSA_CHECK(process_ && alloc_ && model_ && weights_ && kv_ && bufs_ &&
                     semaphores_,
                 "ForwardPass env incomplete");
    MEDUSA_CHECK(!model_->batched_lm_head || lm_workspace_ != nullptr,
                 "batched LM head requires a workspace map");
}

StatusOr<DeviceAddr>
ForwardPass::temp(u64 func_bytes, u64 logical_bytes)
{
    MEDUSA_ASSIGN_OR_RETURN(DeviceAddr addr,
                            alloc_->allocate(logical_bytes, func_bytes));
    temps_.push_back(addr);
    return addr;
}

Status
ForwardPass::releaseTemps()
{
    while (!temps_.empty()) {
        MEDUSA_RETURN_IF_ERROR(alloc_->free(temps_.back()));
        temps_.pop_back();
    }
    return Status::ok();
}

StatusOr<std::pair<DeviceAddr, DeviceAddr>>
ForwardPass::semaphores(u32 layer)
{
    auto it = semaphores_->find(layer);
    if (it != semaphores_->end()) {
        return it->second;
    }
    if (process_->captureActive()) {
        return failedPrecondition(
            "split-K semaphores must be created by warm-up, not capture");
    }
    // Lazily create the layer's two 4-byte semaphore workspaces and
    // initialize them with the magic (the cuBLAS-workspace analogue).
    // These are never freed: Medusa classifies them as permanent buffers
    // and must materialize their 4-byte contents (§4.3).
    std::pair<DeviceAddr, DeviceAddr> sems;
    MEDUSA_ASSIGN_OR_RETURN(sems.first, alloc_->allocate(4, 4));
    MEDUSA_ASSIGN_OR_RETURN(sems.second, alloc_->allocate(4, 4));
    const u32 magic = simcuda::kGemmWorkspaceMagic;
    MEDUSA_RETURN_IF_ERROR(
        process_->memcpyH2D(sems.first, &magic, sizeof(magic), 4));
    MEDUSA_RETURN_IF_ERROR(
        process_->memcpyH2D(sems.second, &magic, sizeof(magic), 4));
    (*semaphores_)[layer] = sems;
    return sems;
}

StatusOr<std::pair<DeviceAddr, DeviceAddr>>
ForwardPass::lmWorkspace(u32 bs)
{
    auto it = lm_workspace_->find(bs);
    if (it != lm_workspace_->end()) {
        return it->second;
    }
    if (process_->captureActive()) {
        return failedPrecondition(
            "LM-head workspace must be created by warm-up, not capture");
    }
    // A persistent final-norm output and a device pointer array holding
    // [norm_buf, lm_head weights, logits]. Both live forever; the array
    // holds *pointers*, which is the §8 indirect-pointer restoration
    // case: Medusa must rewrite these words, not just copy them.
    const ModelConfig &m = *model_;
    std::pair<DeviceAddr, DeviceAddr> ws;
    MEDUSA_ASSIGN_OR_RETURN(
        ws.first,
        alloc_->allocate(static_cast<u64>(bs) * m.hidden * 2,
                         static_cast<u64>(bs) * m.func.hidden * 4));
    MEDUSA_ASSIGN_OR_RETURN(ws.second, alloc_->allocate(24, 24));
    const u64 operands[3] = {ws.first, weights_->lm_head,
                             bufs_->logits};
    MEDUSA_RETURN_IF_ERROR(process_->memcpyH2D(
        ws.second, operands, sizeof(operands), sizeof(operands)));
    (*lm_workspace_)[bs] = ws;
    return ws;
}

Status
ForwardPass::decode(Stream &stream, u32 bs, u32 layer_begin, u32 layer_end,
                    bool with_embed_head)
{
    const BuiltinKernels &k = BuiltinKernels::get();
    const ModelConfig &m = *model_;
    const FuncDims &f = m.func;
    const u32 h_f = f.hidden;
    // Per-rank (tensor-parallel) attention/MLP widths; equal to the
    // full widths when tp_world == 1.
    const u32 world = m.tp_world;
    const u32 q_f = m.funcLocalQDim();
    const u32 kv_f = m.funcLocalKvDim();
    const u32 heads_l = m.funcLocalHeads();
    const u32 kvh_l = m.funcLocalKvHeads();
    const u32 inter_f = m.funcLocalIntermediate();
    const u32 stride = q_f + 2 * kv_f; // fused QKV row stride
    const f64 h_r = m.hidden;
    const f64 q_r = m.localQDim();
    const f64 kv_r = m.localKvDim();
    const f64 s_r = q_r + 2 * kv_r;
    const f64 inter_r = m.localIntermediate();
    const bool split = usesAttnSplit(bs);

    // ---- temps, in a strict deterministic order -----------------------
    const u64 row_f = static_cast<u64>(bs) * h_f * 4;
    const u64 row_r = static_cast<u64>(bs) * static_cast<u64>(h_r) * 2;
    const u64 qrow_f = static_cast<u64>(bs) * q_f * 4;
    const u64 qrow_r = static_cast<u64>(bs) * static_cast<u64>(q_r) * 2;
    MEDUSA_ASSIGN_OR_RETURN(DeviceAddr hidden, temp(row_f, row_r));
    MEDUSA_ASSIGN_OR_RETURN(DeviceAddr normed, temp(row_f, row_r));
    MEDUSA_ASSIGN_OR_RETURN(
        DeviceAddr qkv,
        temp(static_cast<u64>(bs) * stride * 4,
             static_cast<u64>(bs) * static_cast<u64>(s_r) * 2));
    MEDUSA_ASSIGN_OR_RETURN(DeviceAddr attn_out, temp(qrow_f, qrow_r));
    DeviceAddr attn_partial = 0;
    if (split) {
        MEDUSA_ASSIGN_OR_RETURN(attn_partial, temp(qrow_f, qrow_r));
    }
    MEDUSA_ASSIGN_OR_RETURN(DeviceAddr o_out, temp(row_f, row_r));
    const bool is_falcon = m.arch == ModelArch::kFalcon;
    const u64 gu_width = is_falcon ? inter_f : 2 * inter_f;
    const f64 gu_width_r = is_falcon ? inter_r : 2.0 * inter_r;
    MEDUSA_ASSIGN_OR_RETURN(
        DeviceAddr gu,
        temp(static_cast<u64>(bs) * gu_width * 4,
             static_cast<u64>(bs) * static_cast<u64>(gu_width_r) * 2));
    MEDUSA_ASSIGN_OR_RETURN(
        DeviceAddr act,
        temp(static_cast<u64>(bs) * inter_f * 4,
             static_cast<u64>(bs) * static_cast<u64>(inter_r) * 2));
    MEDUSA_ASSIGN_OR_RETURN(DeviceAddr mlp_out, temp(row_f, row_r));

    const DeviceAddr q_ptr = qkv;
    const DeviceAddr k_ptr = qkv + static_cast<u64>(q_f) * 4;
    const DeviceAddr v_ptr = qkv + (static_cast<u64>(q_f) + kv_f) * 4;
    const f32 scale = 1.0f / std::sqrt(static_cast<f32>(f.head_dim));

    auto launch = [&](simcuda::KernelId id, ParamsBuilder &pb,
                      TimingInfo t) {
        return stream.launch(id, pb.take(), t);
    };
    // The tensor-parallel collective: sum partial projections across
    // ranks (payload: the fp16 activation row block).
    auto all_reduce = [&](DeviceAddr buf) -> Status {
        if (world == 1) {
            return Status::ok();
        }
        TimingInfo t;
        t.bytes = static_cast<f64>(bs) * h_r * 2.0;
        ParamsBuilder pb;
        pb.ptr(buf)
            .i32(static_cast<i32>(bs * h_f))
            .i32(static_cast<i32>(m.tp_rank))
            .i32(static_cast<i32>(world));
        return launch(k.all_reduce_sum, pb, t);
    };

    // ---- embedding -----------------------------------------------------
    if (with_embed_head) {
        ParamsBuilder pb;
        pb.ptr(weights_->embed)
            .ptr(bufs_->token_ids)
            .ptr(hidden)
            .i32(static_cast<i32>(bs))
            .i32(static_cast<i32>(h_f))
            .i32(static_cast<i32>(f.vocab));
        MEDUSA_RETURN_IF_ERROR(
            launch(k.embedding_lookup, pb, elementwiseTiming(bs, h_r)));
    }

    // ---- decoder layers --------------------------------------------------
    for (u32 l = layer_begin; l < layer_end; ++l) {
        const LayerWeights &lw = weights_->layers.at(l);

        // Pre-attention normalization.
        if (is_falcon) {
            ParamsBuilder pb;
            pb.ptr(hidden)
                .ptr(lw.input_norm)
                .ptr(lw.input_norm_bias)
                .ptr(normed)
                .i32(static_cast<i32>(bs))
                .i32(static_cast<i32>(h_f))
                .f32(kNormEps);
            MEDUSA_RETURN_IF_ERROR(
                launch(k.layernorm, pb, elementwiseTiming(bs, h_r)));
        } else {
            ParamsBuilder pb;
            pb.ptr(hidden)
                .ptr(lw.input_norm)
                .ptr(normed)
                .i32(static_cast<i32>(bs))
                .i32(static_cast<i32>(h_f))
                .f32(kNormEps);
            MEDUSA_RETURN_IF_ERROR(
                launch(k.rmsnorm, pb, elementwiseTiming(bs, h_r)));
        }

        // Fused QKV projection.
        {
            ParamsBuilder pb;
            pb.ptr(normed)
                .ptr(lw.qkv_w)
                .ptr(qkv)
                .i32(static_cast<i32>(bs))
                .i32(static_cast<i32>(stride))
                .i32(static_cast<i32>(h_f));
            MEDUSA_RETURN_IF_ERROR(
                launch(k.gemm_128x128, pb, gemmTiming(bs, s_r, h_r)));
        }
        if (m.arch == ModelArch::kQwen) {
            ParamsBuilder pb;
            pb.ptr(qkv)
                .ptr(lw.qkv_b)
                .i32(static_cast<i32>(bs))
                .i32(static_cast<i32>(stride));
            MEDUSA_RETURN_IF_ERROR(
                launch(k.bias_add, pb, elementwiseTiming(bs, s_r)));
        }

        // Rotary embedding on q and k (interior pointers into qkv).
        {
            ParamsBuilder pb;
            pb.ptr(q_ptr)
                .ptr(k_ptr)
                .ptr(bufs_->positions)
                .i32(static_cast<i32>(bs))
                .i32(static_cast<i32>(heads_l))
                .i32(static_cast<i32>(kvh_l))
                .i32(static_cast<i32>(f.head_dim))
                .i32(static_cast<i32>(stride))
                .i32(static_cast<i32>(stride))
                .f32(kRopeTheta);
            MEDUSA_RETURN_IF_ERROR(
                launch(k.rope, pb, elementwiseTiming(bs, q_r + kv_r)));
        }

        // Append K/V to the paged cache.
        {
            ParamsBuilder pb;
            pb.ptr(k_ptr)
                .ptr(v_ptr)
                .ptr(kv_->k_layers.at(l))
                .ptr(kv_->v_layers.at(l))
                .ptr(bufs_->slot_mapping)
                .i32(static_cast<i32>(bs))
                .i32(static_cast<i32>(kvh_l))
                .i32(static_cast<i32>(f.head_dim))
                .i32(static_cast<i32>(stride));
            MEDUSA_RETURN_IF_ERROR(
                launch(k.kv_write, pb, elementwiseTiming(bs, 2 * kv_r)));
        }

        // Paged decode attention (split into two kernels at large bs).
        {
            TimingInfo t;
            t.flops = 4.0 * bs * kRepresentativeCtx * q_r;
            t.bytes = 2.0 * bs * kRepresentativeCtx * kv_r * 2.0;
            ParamsBuilder pb;
            pb.ptr(q_ptr)
                .ptr(kv_->k_layers.at(l))
                .ptr(kv_->v_layers.at(l))
                .ptr(bufs_->block_tables)
                .ptr(bufs_->seq_lens)
                .ptr(split ? attn_partial : attn_out)
                .i32(static_cast<i32>(bs))
                .i32(static_cast<i32>(heads_l))
                .i32(static_cast<i32>(kvh_l))
                .i32(static_cast<i32>(f.head_dim))
                .i32(static_cast<i32>(f.block_size))
                .i32(static_cast<i32>(bufs_->max_blocks_per_seq))
                .i32(static_cast<i32>(stride))
                .i64(static_cast<i64>(kStreamTagPrefix | bs))
                .f32(scale);
            MEDUSA_RETURN_IF_ERROR(
                launch(k.paged_attention_decode, pb, t));
            if (split) {
                ParamsBuilder pb2;
                pb2.ptr(attn_partial)
                    .ptr(attn_out)
                    .i32(static_cast<i32>(bs * q_f));
                MEDUSA_RETURN_IF_ERROR(launch(k.paged_attention_reduce,
                                              pb2,
                                              elementwiseTiming(bs, q_r)));
            }
        }

        // Attention output projection — the split-K GEMM with the
        // persistent semaphore workspaces.
        {
            MEDUSA_ASSIGN_OR_RETURN(auto sems, semaphores(l));
            ParamsBuilder pb;
            pb.ptr(sems.first)
                .ptr(sems.second)
                .ptr(attn_out)
                .ptr(lw.o_proj)
                .ptr(o_out)
                .i32(static_cast<i32>(bs))
                .i32(static_cast<i32>(h_f))
                .i32(static_cast<i32>(q_f));
            MEDUSA_RETURN_IF_ERROR(
                launch(k.gemm_splitk, pb, gemmTiming(bs, h_r, q_r)));
        }
        // TP: sum the partial attention projections across ranks.
        MEDUSA_RETURN_IF_ERROR(all_reduce(o_out));

        if (is_falcon) {
            // Parallel MLP off the same normed input.
            {
                ParamsBuilder pb;
                pb.ptr(normed)
                    .ptr(lw.mlp_up)
                    .ptr(gu)
                    .i32(static_cast<i32>(bs))
                    .i32(static_cast<i32>(inter_f))
                    .i32(static_cast<i32>(h_f));
                MEDUSA_RETURN_IF_ERROR(launch(
                    k.gemm_64x64, pb,
                    gemmTiming(bs, inter_r, h_r)));
            }
            {
                ParamsBuilder pb;
                pb.ptr(gu).ptr(act).i32(
                    static_cast<i32>(bs * inter_f));
                MEDUSA_RETURN_IF_ERROR(launch(
                    k.gelu, pb, elementwiseTiming(bs, inter_r)));
            }
            {
                ParamsBuilder pb;
                pb.ptr(act)
                    .ptr(lw.mlp_down)
                    .ptr(mlp_out)
                    .i32(static_cast<i32>(bs))
                    .i32(static_cast<i32>(h_f))
                    .i32(static_cast<i32>(inter_f));
                MEDUSA_RETURN_IF_ERROR(launch(
                    k.gemm_64x64, pb,
                    gemmTiming(bs, h_r, inter_r)));
            }
            // TP: sum the partial MLP projections across ranks.
            MEDUSA_RETURN_IF_ERROR(all_reduce(mlp_out));
            ParamsBuilder pb_a;
            pb_a.ptr(hidden).ptr(o_out).i32(static_cast<i32>(bs * h_f));
            MEDUSA_RETURN_IF_ERROR(
                launch(k.residual_add, pb_a, elementwiseTiming(bs, h_r)));
            ParamsBuilder pb_b;
            pb_b.ptr(hidden).ptr(mlp_out).i32(
                static_cast<i32>(bs * h_f));
            MEDUSA_RETURN_IF_ERROR(
                launch(k.residual_add, pb_b, elementwiseTiming(bs, h_r)));
        } else {
            ParamsBuilder pb_a;
            pb_a.ptr(hidden).ptr(o_out).i32(static_cast<i32>(bs * h_f));
            MEDUSA_RETURN_IF_ERROR(
                launch(k.residual_add, pb_a, elementwiseTiming(bs, h_r)));
            {
                ParamsBuilder pb;
                pb.ptr(hidden)
                    .ptr(lw.post_norm)
                    .ptr(normed)
                    .i32(static_cast<i32>(bs))
                    .i32(static_cast<i32>(h_f))
                    .f32(kNormEps);
                MEDUSA_RETURN_IF_ERROR(
                    launch(k.rmsnorm, pb, elementwiseTiming(bs, h_r)));
            }
            {
                ParamsBuilder pb;
                pb.ptr(normed)
                    .ptr(lw.gate_up)
                    .ptr(gu)
                    .i32(static_cast<i32>(bs))
                    .i32(static_cast<i32>(2 * inter_f))
                    .i32(static_cast<i32>(h_f));
                MEDUSA_RETURN_IF_ERROR(launch(
                    k.gemm_64x64, pb,
                    gemmTiming(bs, 2.0 * inter_r, h_r)));
            }
            {
                ParamsBuilder pb;
                pb.ptr(gu)
                    .ptr(act)
                    .i32(static_cast<i32>(bs))
                    .i32(static_cast<i32>(inter_f));
                MEDUSA_RETURN_IF_ERROR(launch(
                    k.silu_mul, pb,
                    elementwiseTiming(bs, inter_r)));
            }
            {
                ParamsBuilder pb;
                pb.ptr(act)
                    .ptr(lw.down)
                    .ptr(mlp_out)
                    .i32(static_cast<i32>(bs))
                    .i32(static_cast<i32>(h_f))
                    .i32(static_cast<i32>(inter_f));
                MEDUSA_RETURN_IF_ERROR(launch(
                    k.gemm_64x64, pb,
                    gemmTiming(bs, h_r, inter_r)));
            }
            // TP: sum the partial MLP projections across ranks.
            MEDUSA_RETURN_IF_ERROR(all_reduce(mlp_out));
            ParamsBuilder pb_b;
            pb_b.ptr(hidden).ptr(mlp_out).i32(
                static_cast<i32>(bs * h_f));
            MEDUSA_RETURN_IF_ERROR(
                launch(k.residual_add, pb_b, elementwiseTiming(bs, h_r)));
        }
    }

    // ---- final norm + LM head ------------------------------------------
    if (with_embed_head) {
        // With the batched LM head (§8 indirect-pointer variant), the
        // final norm writes into a persistent workspace so the device
        // pointer array can reference a stable buffer across replays.
        DeviceAddr norm_out = normed;
        DeviceAddr ptr_array = 0;
        if (m.batched_lm_head) {
            MEDUSA_ASSIGN_OR_RETURN(auto ws, lmWorkspace(bs));
            norm_out = ws.first;
            ptr_array = ws.second;
        }
        if (is_falcon) {
            ParamsBuilder pb;
            pb.ptr(hidden)
                .ptr(weights_->final_norm)
                .ptr(weights_->final_norm_bias)
                .ptr(norm_out)
                .i32(static_cast<i32>(bs))
                .i32(static_cast<i32>(h_f))
                .f32(kNormEps);
            MEDUSA_RETURN_IF_ERROR(
                launch(k.layernorm, pb, elementwiseTiming(bs, h_r)));
        } else {
            ParamsBuilder pb;
            pb.ptr(hidden)
                .ptr(weights_->final_norm)
                .ptr(norm_out)
                .i32(static_cast<i32>(bs))
                .i32(static_cast<i32>(h_f))
                .f32(kNormEps);
            MEDUSA_RETURN_IF_ERROR(
                launch(k.rmsnorm, pb, elementwiseTiming(bs, h_r)));
        }
        if (m.batched_lm_head) {
            ParamsBuilder pb;
            pb.ptr(ptr_array)
                .i32(static_cast<i32>(bs))
                .i32(static_cast<i32>(f.vocab))
                .i32(static_cast<i32>(h_f));
            MEDUSA_RETURN_IF_ERROR(launch(k.gemm_batched, pb,
                                          gemmTiming(bs, m.vocab, h_r)));
        } else {
            ParamsBuilder pb;
            pb.ptr(norm_out)
                .ptr(weights_->lm_head)
                .ptr(bufs_->logits)
                .i32(static_cast<i32>(bs))
                .i32(static_cast<i32>(f.vocab))
                .i32(static_cast<i32>(h_f));
            MEDUSA_RETURN_IF_ERROR(
                launch(k.gemm_lmhead, pb, gemmTiming(bs, m.vocab, h_r)));
        }
    }

    return releaseTemps();
}

Status
ForwardPass::prefill(Stream &stream, u32 bs, u32 n_func, u32 n_real)
{
    const BuiltinKernels &k = BuiltinKernels::get();
    const ModelConfig &m = *model_;
    const FuncDims &f = m.func;
    const u32 h_f = f.hidden;
    const u32 world = m.tp_world;
    const u32 q_f = m.funcLocalQDim();
    const u32 kv_f = m.funcLocalKvDim();
    const u32 heads_l = m.funcLocalHeads();
    const u32 kvh_l = m.funcLocalKvHeads();
    const u32 inter_f = m.funcLocalIntermediate();
    const u32 stride = q_f + 2 * kv_f;
    const f64 h_r = m.hidden;
    const f64 q_r = m.localQDim();
    const f64 kv_r = m.localKvDim();
    const f64 s_r = q_r + 2 * kv_r;
    const f64 inter_r = m.localIntermediate();
    const f64 n_r = n_real;
    const u32 n = n_func;
    const bool is_falcon = m.arch == ModelArch::kFalcon;

    const u64 row_f = static_cast<u64>(n) * h_f * 4;
    const u64 row_r = static_cast<u64>(n_r) * static_cast<u64>(h_r) * 2;
    MEDUSA_ASSIGN_OR_RETURN(DeviceAddr hidden, temp(row_f, row_r));
    MEDUSA_ASSIGN_OR_RETURN(DeviceAddr normed, temp(row_f, row_r));
    MEDUSA_ASSIGN_OR_RETURN(
        DeviceAddr qkv,
        temp(static_cast<u64>(n) * stride * 4,
             static_cast<u64>(n_r) * static_cast<u64>(s_r) * 2));
    MEDUSA_ASSIGN_OR_RETURN(
        DeviceAddr attn_out,
        temp(static_cast<u64>(n) * q_f * 4,
             static_cast<u64>(n_r) * static_cast<u64>(q_r) * 2));
    const u64 gu_width = is_falcon ? inter_f : 2 * inter_f;
    const f64 gu_width_r = is_falcon ? inter_r : 2.0 * inter_r;
    MEDUSA_ASSIGN_OR_RETURN(
        DeviceAddr gu,
        temp(static_cast<u64>(n) * gu_width * 4,
             static_cast<u64>(n_r) * static_cast<u64>(gu_width_r) * 2));
    MEDUSA_ASSIGN_OR_RETURN(
        DeviceAddr act,
        temp(static_cast<u64>(n) * inter_f * 4,
             static_cast<u64>(n_r) * static_cast<u64>(inter_r) * 2));
    MEDUSA_ASSIGN_OR_RETURN(DeviceAddr mlp_out, temp(row_f, row_r));

    const DeviceAddr q_ptr = qkv;
    const DeviceAddr k_ptr = qkv + static_cast<u64>(q_f) * 4;
    const DeviceAddr v_ptr = qkv + (static_cast<u64>(q_f) + kv_f) * 4;
    const f32 scale = 1.0f / std::sqrt(static_cast<f32>(f.head_dim));

    auto launch = [&](simcuda::KernelId id, ParamsBuilder &pb,
                      TimingInfo t) {
        return stream.launch(id, pb.take(), t);
    };
    // TP collective (a rank-local no-op when launched eagerly; prefill
    // is eager only for warm-up/profiling, whose outputs are
    // discarded).
    auto all_reduce = [&](DeviceAddr buf) -> Status {
        if (world == 1) {
            return Status::ok();
        }
        TimingInfo t;
        t.bytes = static_cast<f64>(n_r) * h_r * 2.0;
        ParamsBuilder pb;
        pb.ptr(buf)
            .i32(static_cast<i32>(n * h_f))
            .i32(static_cast<i32>(m.tp_rank))
            .i32(static_cast<i32>(world));
        return launch(k.all_reduce_sum, pb, t);
    };

    {
        ParamsBuilder pb;
        pb.ptr(weights_->embed)
            .ptr(bufs_->token_ids)
            .ptr(hidden)
            .i32(static_cast<i32>(n))
            .i32(static_cast<i32>(h_f))
            .i32(static_cast<i32>(f.vocab));
        MEDUSA_RETURN_IF_ERROR(
            launch(k.embedding_lookup, pb, elementwiseTiming(n_r, h_r)));
    }

    for (u32 l = 0; l < m.num_layers; ++l) {
        const LayerWeights &lw = weights_->layers.at(l);
        if (is_falcon) {
            ParamsBuilder pb;
            pb.ptr(hidden)
                .ptr(lw.input_norm)
                .ptr(lw.input_norm_bias)
                .ptr(normed)
                .i32(static_cast<i32>(n))
                .i32(static_cast<i32>(h_f))
                .f32(kNormEps);
            MEDUSA_RETURN_IF_ERROR(
                launch(k.layernorm, pb, elementwiseTiming(n_r, h_r)));
        } else {
            ParamsBuilder pb;
            pb.ptr(hidden)
                .ptr(lw.input_norm)
                .ptr(normed)
                .i32(static_cast<i32>(n))
                .i32(static_cast<i32>(h_f))
                .f32(kNormEps);
            MEDUSA_RETURN_IF_ERROR(
                launch(k.rmsnorm, pb, elementwiseTiming(n_r, h_r)));
        }
        {
            ParamsBuilder pb;
            pb.ptr(normed)
                .ptr(lw.qkv_w)
                .ptr(qkv)
                .i32(static_cast<i32>(n))
                .i32(static_cast<i32>(stride))
                .i32(static_cast<i32>(h_f));
            MEDUSA_RETURN_IF_ERROR(
                launch(k.gemm_128x128, pb, gemmTiming(n_r, s_r, h_r)));
        }
        if (m.arch == ModelArch::kQwen) {
            ParamsBuilder pb;
            pb.ptr(qkv)
                .ptr(lw.qkv_b)
                .i32(static_cast<i32>(n))
                .i32(static_cast<i32>(stride));
            MEDUSA_RETURN_IF_ERROR(
                launch(k.bias_add, pb, elementwiseTiming(n_r, s_r)));
        }
        {
            ParamsBuilder pb;
            pb.ptr(q_ptr)
                .ptr(k_ptr)
                .ptr(bufs_->positions)
                .i32(static_cast<i32>(n))
                .i32(static_cast<i32>(heads_l))
                .i32(static_cast<i32>(kvh_l))
                .i32(static_cast<i32>(f.head_dim))
                .i32(static_cast<i32>(stride))
                .i32(static_cast<i32>(stride))
                .f32(kRopeTheta);
            MEDUSA_RETURN_IF_ERROR(
                launch(k.rope, pb, elementwiseTiming(n_r, q_r + kv_r)));
        }
        {
            ParamsBuilder pb;
            pb.ptr(k_ptr)
                .ptr(v_ptr)
                .ptr(kv_->k_layers.at(l))
                .ptr(kv_->v_layers.at(l))
                .ptr(bufs_->slot_mapping)
                .i32(static_cast<i32>(n))
                .i32(static_cast<i32>(kvh_l))
                .i32(static_cast<i32>(f.head_dim))
                .i32(static_cast<i32>(stride));
            MEDUSA_RETURN_IF_ERROR(
                launch(k.kv_write, pb, elementwiseTiming(n_r, 2 * kv_r)));
        }
        {
            // Varlen causal attention: flops ~ n * avg_ctx.
            TimingInfo t;
            const f64 avg_ctx = n_r / std::max<u32>(bs, 1) / 2.0;
            t.flops = 4.0 * n_r * avg_ctx * q_r;
            t.bytes = 2.0 * n_r * (q_r + 2 * kv_r) * 2.0;
            ParamsBuilder pb;
            pb.ptr(q_ptr)
                .ptr(k_ptr)
                .ptr(v_ptr)
                .ptr(bufs_->seq_starts)
                .ptr(attn_out)
                .i32(static_cast<i32>(bs))
                .i32(static_cast<i32>(heads_l))
                .i32(static_cast<i32>(kvh_l))
                .i32(static_cast<i32>(f.head_dim))
                .i32(static_cast<i32>(stride))
                .f32(scale);
            MEDUSA_RETURN_IF_ERROR(launch(k.attention_prefill, pb, t));
        }
        {
            // Prefill uses the plain GEMM variant for the output
            // projection (different shape regime than decode).
            ParamsBuilder pb;
            pb.ptr(attn_out)
                .ptr(lw.o_proj)
                .ptr(mlp_out)
                .i32(static_cast<i32>(n))
                .i32(static_cast<i32>(h_f))
                .i32(static_cast<i32>(q_f));
            MEDUSA_RETURN_IF_ERROR(
                launch(k.gemm_128x128, pb, gemmTiming(n_r, h_r, q_r)));
        }
        MEDUSA_RETURN_IF_ERROR(all_reduce(mlp_out));
        ParamsBuilder pb_add;
        pb_add.ptr(hidden).ptr(mlp_out).i32(static_cast<i32>(n * h_f));
        MEDUSA_RETURN_IF_ERROR(
            launch(k.residual_add, pb_add, elementwiseTiming(n_r, h_r)));

        if (is_falcon) {
            {
                ParamsBuilder pb;
                pb.ptr(normed)
                    .ptr(lw.mlp_up)
                    .ptr(gu)
                    .i32(static_cast<i32>(n))
                    .i32(static_cast<i32>(inter_f))
                    .i32(static_cast<i32>(h_f));
                MEDUSA_RETURN_IF_ERROR(launch(
                    k.gemm_64x64, pb,
                    gemmTiming(n_r, inter_r, h_r)));
            }
            {
                ParamsBuilder pb;
                pb.ptr(gu).ptr(act).i32(
                    static_cast<i32>(n * inter_f));
                MEDUSA_RETURN_IF_ERROR(launch(
                    k.gelu, pb, elementwiseTiming(n_r, inter_r)));
            }
            {
                ParamsBuilder pb;
                pb.ptr(act)
                    .ptr(lw.mlp_down)
                    .ptr(mlp_out)
                    .i32(static_cast<i32>(n))
                    .i32(static_cast<i32>(h_f))
                    .i32(static_cast<i32>(inter_f));
                MEDUSA_RETURN_IF_ERROR(launch(
                    k.gemm_64x64, pb,
                    gemmTiming(n_r, h_r, inter_r)));
            }
            MEDUSA_RETURN_IF_ERROR(all_reduce(mlp_out));
        } else {
            {
                ParamsBuilder pb;
                pb.ptr(hidden)
                    .ptr(lw.post_norm)
                    .ptr(normed)
                    .i32(static_cast<i32>(n))
                    .i32(static_cast<i32>(h_f))
                    .f32(kNormEps);
                MEDUSA_RETURN_IF_ERROR(
                    launch(k.rmsnorm, pb, elementwiseTiming(n_r, h_r)));
            }
            {
                ParamsBuilder pb;
                pb.ptr(normed)
                    .ptr(lw.gate_up)
                    .ptr(gu)
                    .i32(static_cast<i32>(n))
                    .i32(static_cast<i32>(2 * inter_f))
                    .i32(static_cast<i32>(h_f));
                MEDUSA_RETURN_IF_ERROR(launch(
                    k.gemm_64x64, pb,
                    gemmTiming(n_r, 2.0 * inter_r, h_r)));
            }
            {
                ParamsBuilder pb;
                pb.ptr(gu)
                    .ptr(act)
                    .i32(static_cast<i32>(n))
                    .i32(static_cast<i32>(inter_f));
                MEDUSA_RETURN_IF_ERROR(launch(
                    k.silu_mul, pb,
                    elementwiseTiming(n_r, inter_r)));
            }
            {
                ParamsBuilder pb;
                pb.ptr(act)
                    .ptr(lw.down)
                    .ptr(mlp_out)
                    .i32(static_cast<i32>(n))
                    .i32(static_cast<i32>(h_f))
                    .i32(static_cast<i32>(inter_f));
                MEDUSA_RETURN_IF_ERROR(launch(
                    k.gemm_64x64, pb,
                    gemmTiming(n_r, h_r, inter_r)));
            }
            MEDUSA_RETURN_IF_ERROR(all_reduce(mlp_out));
        }
        ParamsBuilder pb_add2;
        pb_add2.ptr(hidden).ptr(mlp_out).i32(static_cast<i32>(n * h_f));
        MEDUSA_RETURN_IF_ERROR(
            launch(k.residual_add, pb_add2, elementwiseTiming(n_r, h_r)));
    }

    if (is_falcon) {
        ParamsBuilder pb;
        pb.ptr(hidden)
            .ptr(weights_->final_norm)
            .ptr(weights_->final_norm_bias)
            .ptr(normed)
            .i32(static_cast<i32>(n))
            .i32(static_cast<i32>(h_f))
            .f32(kNormEps);
        MEDUSA_RETURN_IF_ERROR(
            launch(k.layernorm, pb, elementwiseTiming(n_r, h_r)));
    } else {
        ParamsBuilder pb;
        pb.ptr(hidden)
            .ptr(weights_->final_norm)
            .ptr(normed)
            .i32(static_cast<i32>(n))
            .i32(static_cast<i32>(h_f))
            .f32(kNormEps);
        MEDUSA_RETURN_IF_ERROR(
            launch(k.rmsnorm, pb, elementwiseTiming(n_r, h_r)));
    }
    {
        ParamsBuilder pb;
        pb.ptr(normed)
            .ptr(weights_->lm_head)
            .ptr(bufs_->logits)
            .i32(static_cast<i32>(n))
            .i32(static_cast<i32>(f.vocab))
            .i32(static_cast<i32>(h_f));
        MEDUSA_RETURN_IF_ERROR(
            launch(k.gemm_lmhead, pb, gemmTiming(n_r, m.vocab, h_r)));
    }

    return releaseTemps();
}

u64
ForwardPass::decodeNodeCount(const ModelConfig &m, u32 bs)
{
    u64 per_layer = 0;
    switch (m.arch) {
      case ModelArch::kLlama:
        // norm, qkv, rope, kv_write, attn, o_proj, add, norm, gate_up,
        // silu, down, add
        per_layer = 12;
        break;
      case ModelArch::kQwen:
        per_layer = 13; // + qkv bias
        break;
      case ModelArch::kFalcon:
        // ln, qkv, rope, kv_write, attn, dense, mlp_up, gelu, mlp_down,
        // add, add
        per_layer = 11;
        break;
    }
    if (usesAttnSplit(bs)) {
        ++per_layer; // split-K attention reduce node
    }
    if (m.tp_world > 1) {
        per_layer += 2; // the two all-reduce collectives per layer
    }
    return static_cast<u64>(m.num_layers) * per_layer +
           3; // embed + final norm + lm head
}

} // namespace medusa::llm
