/**
 * @file
 * Cold-start strategy drivers for the baseline systems of §7:
 *
 *  - vLLM: every loading-phase stage runs synchronously, in order.
 *  - vLLM + ASYNC: model-weights loading overlaps the tokenizer-loading
 *    and KV-cache-initialization stages (with the mutual-interference
 *    slowdown the paper measures), then capturing runs.
 *  - w/o CUDA GRAPH: the capturing stage is skipped entirely; serving
 *    pays eager per-kernel launch overhead instead.
 *
 * The Medusa strategy lives in src/medusa/ (it needs the offline
 * artifact); it produces the same StageTimes shape so benchmarks can
 * compare all four uniformly.
 *
 * All stages execute *functionally* and sequentially on the runtime's
 * virtual clock; the driver measures each stage's duration and composes
 * the visible loading latency according to the strategy's overlap
 * structure.
 */

#ifndef MEDUSA_LLM_ENGINE_H
#define MEDUSA_LLM_ENGINE_H

#include <memory>

#include "common/cold_start_report.h"
#include "llm/runtime.h"

namespace medusa::llm {

/** The compared serving strategies (§7), plus §2.4's alternatives. */
enum class Strategy {
    kVllm = 0,
    kVllmAsync,
    kNoCudaGraph,
    kMedusa,
    /**
     * §2.4 "deferring the capturing stage": skip capture at cold start
     * and pay warm-up + capture lazily, per batch size, during serving.
     */
    kDeferredCapture,
};

const char *strategyName(Strategy strategy);

/**
 * StageTimes moved to common/cold_start_report.h with the unified
 * reporting schema; llm::StageTimes remains valid via this alias.
 */
using medusa::StageTimes;

/**
 * Runs a full cold start under one of the three baseline strategies and
 * leaves a ready-to-serve runtime behind.
 */
class BaselineEngine
{
  public:
    struct Options
    {
        ModelConfig model;
        Strategy strategy = Strategy::kVllm;
        u64 aslr_seed = 1;
        const CostModel *cost = nullptr;
        /**
         * Whether a warm container pool absorbs runtime initialization
         * (the setting of the paper's trace experiments).
         */
        bool warm_container = true;
        /**
         * Optional extra span sink; the engine always records its own
         * spans into the ColdStartReport (see PipelineOptions::trace).
         */
        TraceRecorder *trace = nullptr;
    };

    /** Execute the cold start; returns the live engine on success. */
    static StatusOr<std::unique_ptr<BaselineEngine>>
    coldStart(const Options &opts);

    ModelRuntime &runtime() { return *runtime_; }

    /** The consolidated report for this cold start (DESIGN.md §12). */
    const ColdStartReport &coldStartReport() const { return report_; }

    Strategy strategy() const { return strategy_; }
    /** The process-launch seed this engine was cold-started with. */
    u64 aslrSeed() const { return aslr_seed_; }

  private:
    BaselineEngine(Strategy strategy, u64 aslr_seed,
                   std::unique_ptr<ModelRuntime> rt)
        : strategy_(strategy), aslr_seed_(aslr_seed),
          runtime_(std::move(rt))
    {
    }

    Strategy strategy_;
    u64 aslr_seed_;
    std::unique_ptr<ModelRuntime> runtime_;
    ColdStartReport report_;
};

/**
 * Compose the visible loading latency from raw stage durations for a
 * baseline strategy (exposed for tests and for the Medusa driver, which
 * reuses the async-overlap arithmetic).
 */
f64 composeLoading(Strategy strategy, const StageTimes &t,
                   const CostModel &cost);

} // namespace medusa::llm

#endif // MEDUSA_LLM_ENGINE_H
