/**
 * @file
 * A byte-pair-encoding tokenizer.
 *
 * Stage ❸ of the loading phase loads each model's tokenizer. The
 * reproduction implements real BPE — training over a corpus, encoding
 * via iterative lowest-rank merges, and exact-round-trip decoding — so
 * the serving path tokenizes genuine text. Each zoo model trains its
 * tokenizer deterministically from its seed over a synthetic corpus; the
 * *timing* of tokenizer loading is charged from the model's real
 * vocabulary size (see CostModel::tokenizer_per_entry_ns).
 */

#ifndef MEDUSA_LLM_TOKENIZER_H
#define MEDUSA_LLM_TOKENIZER_H

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace medusa::llm {

/**
 * Byte-level BPE: ids 0..255 are raw bytes, ids >= 256 are merges.
 */
class BpeTokenizer
{
  public:
    /**
     * Learn merges from @p corpus until the vocabulary reaches
     * @p target_vocab ids (or no pair repeats).
     */
    static BpeTokenizer train(const std::string &corpus, u32 target_vocab);

    /** Encode text into token ids by iterative lowest-rank merging. */
    std::vector<i32> encode(const std::string &text) const;

    /** Decode ids back to the exact original bytes. */
    std::string decode(const std::vector<i32> &ids) const;

    /** Total vocabulary size (256 byte tokens + merges). */
    u32 vocabSize() const { return 256 + static_cast<u32>(merges_.size()); }

    /** The byte expansion of a token id. */
    StatusOr<std::string> tokenBytes(i32 id) const;

    /** The learned merge list, in rank order (for materialization). */
    const std::vector<std::pair<i32, i32>> &merges() const
    {
        return merges_;
    }

    /**
     * Rebuild a tokenizer from a materialized merge list — the inverse
     * of merges(). Equivalent to the training that produced the list,
     * minus the corpus scan: fromMerges(t.merges()) encodes and decodes
     * identically to t.
     */
    static StatusOr<BpeTokenizer>
    fromMerges(const std::vector<std::pair<i32, i32>> &merges);

  private:
    /** merge index -> (left id, right id). */
    std::vector<std::pair<i32, i32>> merges_;
    /** (left, right) -> merged id; rank == merged id (lower = earlier). */
    std::map<std::pair<i32, i32>, i32> merge_to_id_;
    /** token id -> byte string (cached expansions). */
    std::vector<std::string> expansions_;
};

/**
 * Deterministic synthetic text with natural-language-like word/sentence
 * structure; used as tokenizer training corpus and example input.
 */
std::string syntheticCorpus(u64 seed, std::size_t approx_bytes);

} // namespace medusa::llm

#endif // MEDUSA_LLM_TOKENIZER_H
