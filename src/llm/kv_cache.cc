#include "llm/kv_cache.h"

namespace medusa::llm {

StatusOr<KvCache>
allocateKvCache(simcuda::CachingAllocator &alloc, const ModelConfig &m,
                u64 free_gpu_bytes)
{
    KvCache cache;
    const u64 budget = static_cast<u64>(
        static_cast<f64>(free_gpu_bytes) * 0.9);
    const u64 block_bytes = m.kvBlockBytes();
    if (block_bytes == 0 || budget < block_bytes) {
        return outOfMemory("no room for any KV block");
    }
    cache.real_num_blocks = budget / block_bytes;
    cache.logical_bytes = cache.real_num_blocks * block_bytes;

    // Per-layer K and V tensors carve up the budget; functional backing
    // holds FuncDims::num_blocks blocks of the scaled geometry.
    const u64 per_tensor_logical =
        cache.logical_bytes / (2ull * m.num_layers);
    const FuncDims &f = m.func;
    // Each tensor-parallel rank stores only its KV-head shard.
    const u64 per_tensor_func_bytes = static_cast<u64>(f.num_blocks) *
                                      f.block_size *
                                      m.funcLocalKvDim() * sizeof(f32);
    cache.k_layers.reserve(m.num_layers);
    cache.v_layers.reserve(m.num_layers);
    for (u32 l = 0; l < m.num_layers; ++l) {
        MEDUSA_ASSIGN_OR_RETURN(
            DeviceAddr k,
            alloc.allocate(per_tensor_logical, per_tensor_func_bytes));
        MEDUSA_ASSIGN_OR_RETURN(
            DeviceAddr v,
            alloc.allocate(per_tensor_logical, per_tensor_func_bytes));
        cache.k_layers.push_back(k);
        cache.v_layers.push_back(v);
    }
    cache.blocks = BlockManager(f.num_blocks);
    return cache;
}

} // namespace medusa::llm
