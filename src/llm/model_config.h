/**
 * @file
 * Model configurations for the ten LLMs of the paper's Table 1.
 *
 * Each model carries two sets of dimensions:
 *  - *real* dims (hidden size, heads, layers, vocab) taken from the
 *    published HuggingFace configs; these drive the timing model
 *    (weight bytes, per-kernel flops) and the loading-phase latencies.
 *  - *functional* dims (FuncDims), a scaled-down geometry the simulated
 *    kernels actually compute with, so that CUDA-graph capture,
 *    restoration and validation are exercised with real data flow at
 *    laptop scale. The layer count is NOT scaled: graph structure
 *    matches the real model.
 */

#ifndef MEDUSA_LLM_MODEL_CONFIG_H
#define MEDUSA_LLM_MODEL_CONFIG_H

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace medusa::llm {

/** Architectural family; decides the per-layer kernel sequence. */
enum class ModelArch {
    kLlama, ///< Llama2 / Yi: RMSNorm + SwiGLU, no attention bias
    kQwen,  ///< Qwen1.5: like Llama plus QKV bias
    kFalcon ///< Falcon: LayerNorm (with bias), MQA, GELU MLP
};

const char *archName(ModelArch arch);

/** Scaled-down functional geometry; see file comment. */
struct FuncDims
{
    u32 hidden = 32;
    u32 heads = 4;
    u32 kv_heads = 4;
    u32 head_dim = 8;
    u32 intermediate = 64;
    u32 vocab = 256;
    u32 block_size = 8;
    /** Max functional sequence length (prompt + output). */
    u32 max_seq = 64;
    /** Functional token budget of the profiling forwarding. */
    u32 max_batched_tokens = 256;
    /** Functional KV block pool (supports 256 seqs x max_seq). */
    u32 num_blocks = 2049;

    u32 kvDim() const { return kv_heads * head_dim; }
};

/** One model of the zoo. */
struct ModelConfig
{
    std::string name;
    ModelArch arch = ModelArch::kLlama;
    u32 num_layers = 0;

    // Real dimensions (timing / accounting).
    u32 hidden = 0;
    u32 heads = 0;
    u32 kv_heads = 0;
    u32 head_dim = 0;
    u32 intermediate = 0;
    u32 vocab = 0;
    u32 max_position = 4096;
    /** Real tokens profiled during KV-cache initialization. */
    u32 max_batched_tokens = 2048;
    /** Real KV block size (vLLM default). */
    u32 kv_block_size = 16;

    FuncDims func;

    /** Seed for deterministic weight contents / tokenizer. */
    u64 seed = 1;

    /**
     * Optional engine variant (paper §8's "indirect pointers"
     * discussion): compute the decode LM head with a batched GEMM that
     * takes a device array of operand pointers. Off for the Table 1
     * zoo; exercised by tests and the ablation bench to demonstrate
     * Medusa's nested-pointer restoration extension.
     */
    bool batched_lm_head = false;

    /**
     * Tensor parallelism (paper §8's multi-GPU future work). Each rank
     * runs its own GpuProcess with sharded attention heads and MLP
     * columns; all-reduce collectives stitch the partial results. The
     * Table 1 zoo runs with tp_world == 1.
     */
    u32 tp_world = 1;
    u32 tp_rank = 0;

    /** Attention heads this rank computes. */
    u32 localHeads() const { return heads / tp_world; }
    /** KV heads on this rank (MQA replicates rather than shards). */
    u32
    localKvHeads() const
    {
        return kv_heads >= tp_world ? kv_heads / tp_world : kv_heads;
    }
    u32 localKvDim() const { return localKvHeads() * head_dim; }
    u32 localQDim() const { return localHeads() * head_dim; }
    u32 localIntermediate() const { return intermediate / tp_world; }

    /** Functional counterparts of the sharded dimensions. */
    u32 funcLocalHeads() const { return func.heads / tp_world; }
    u32
    funcLocalKvHeads() const
    {
        return func.kv_heads >= tp_world ? func.kv_heads / tp_world
                                         : func.kv_heads;
    }
    u32 funcLocalKvDim() const { return funcLocalKvHeads() * func.head_dim; }
    u32 funcLocalQDim() const { return funcLocalHeads() * func.head_dim; }
    u32 funcLocalIntermediate() const
    {
        return func.intermediate / tp_world;
    }

    u32 kvDim() const { return kv_heads * head_dim; }

    /** Bytes of one real KV block across all layers (fp16 K+V). */
    u64
    kvBlockBytes() const
    {
        return static_cast<u64>(kv_block_size) * kvDim() * 2 /*K+V*/ *
               2 /*fp16*/ * num_layers;
    }
};

/** The 35 capture batch sizes used by vLLM: [1, 2, 4, 8, 16, ..., 256]. */
std::vector<u32> captureBatchSizes();

/** All ten models of Table 1, in the paper's order. */
std::vector<ModelConfig> modelZoo();

/** Find a zoo model by name. */
StatusOr<ModelConfig> findModel(const std::string &name);

} // namespace medusa::llm

#endif // MEDUSA_LLM_MODEL_CONFIG_H
