#include "common/crc32.h"

#include <array>
#include <cstring>

namespace medusa {

namespace {

// Slicing-by-8: table[0] is the classic byte-at-a-time table; table[k]
// folds a byte that sits k positions deeper in the stream. Output is
// bit-identical to the byte-at-a-time loop — only throughput changes
// (the v6 image checksums the whole multi-MB file on every open).
constexpr std::array<std::array<u32, 256>, 8>
makeCrcTables()
{
    std::array<std::array<u32, 256>, 8> tables{};
    for (u32 i = 0; i < 256; ++i) {
        u32 c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        tables[0][i] = c;
    }
    for (u32 i = 0; i < 256; ++i) {
        u32 c = tables[0][i];
        for (std::size_t t = 1; t < 8; ++t) {
            c = tables[0][c & 0xFFu] ^ (c >> 8);
            tables[t][i] = c;
        }
    }
    return tables;
}

constexpr std::array<std::array<u32, 256>, 8> kCrcTables = makeCrcTables();

} // namespace

u32
crc32(const void *data, std::size_t size)
{
    const u8 *p = static_cast<const u8 *>(data);
    u32 crc = 0xFFFFFFFFu;
    while (size >= 8) {
        u32 lo;
        u32 hi;
        std::memcpy(&lo, p, 4);
        std::memcpy(&hi, p + 4, 4);
        lo ^= crc;
        crc = kCrcTables[7][lo & 0xFFu] ^ kCrcTables[6][(lo >> 8) & 0xFFu] ^
              kCrcTables[5][(lo >> 16) & 0xFFu] ^ kCrcTables[4][lo >> 24] ^
              kCrcTables[3][hi & 0xFFu] ^ kCrcTables[2][(hi >> 8) & 0xFFu] ^
              kCrcTables[1][(hi >> 16) & 0xFFu] ^ kCrcTables[0][hi >> 24];
        p += 8;
        size -= 8;
    }
    while (size-- > 0) {
        crc = kCrcTables[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    }
    return crc ^ 0xFFFFFFFFu;
}

} // namespace medusa
