#include "common/crc32.h"

#include <array>

namespace medusa {

namespace {

constexpr std::array<u32, 256>
makeCrcTable()
{
    std::array<u32, 256> table{};
    for (u32 i = 0; i < 256; ++i) {
        u32 c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

constexpr std::array<u32, 256> kCrcTable = makeCrcTable();

} // namespace

u32
crc32(const void *data, std::size_t size)
{
    const u8 *p = static_cast<const u8 *>(data);
    u32 crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i) {
        crc = kCrcTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
    }
    return crc ^ 0xFFFFFFFFu;
}

} // namespace medusa
