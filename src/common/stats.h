/**
 * @file
 * Statistics accumulators used by the evaluation harness: running
 * mean/min/max, exact percentile tracking, and fixed-bucket histograms.
 */

#ifndef MEDUSA_COMMON_STATS_H
#define MEDUSA_COMMON_STATS_H

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace medusa {

/**
 * Running scalar summary: count, sum, mean, min, max.
 */
class Summary
{
  public:
    void
    add(f64 v)
    {
        if (count_ == 0 || v < min_) {
            min_ = v;
        }
        if (count_ == 0 || v > max_) {
            max_ = v;
        }
        sum_ += v;
        ++count_;
    }

    u64 count() const { return count_; }
    f64 sum() const { return sum_; }
    f64 mean() const { return count_ ? sum_ / static_cast<f64>(count_) : 0; }
    /**
     * Smallest sample, or NaN when empty — 0 would masquerade as a
     * real observation (a 0-second minimum latency reads as "free").
     */
    f64
    min() const
    {
        return count_ ? min_ : std::numeric_limits<f64>::quiet_NaN();
    }
    /** Largest sample, or NaN when empty (see min()). */
    f64
    max() const
    {
        return count_ ? max_ : std::numeric_limits<f64>::quiet_NaN();
    }

  private:
    u64 count_ = 0;
    f64 sum_ = 0;
    f64 min_ = 0;
    f64 max_ = 0;
};

/**
 * Exact percentile tracker. Stores all samples; adequate for the trace
 * experiments (tens of thousands of requests).
 */
class PercentileTracker
{
  public:
    void add(f64 v) { samples_.push_back(v); }

    u64 count() const { return samples_.size(); }

    /**
     * The q-th percentile using nearest-rank on the sorted samples.
     * @param q percentile in [0, 100].
     */
    f64
    percentile(f64 q) const
    {
        MEDUSA_CHECK(!samples_.empty(), "percentile of empty tracker");
        MEDUSA_CHECK(q >= 0.0 && q <= 100.0, "bad percentile " << q);
        std::vector<f64> sorted = samples_;
        std::sort(sorted.begin(), sorted.end());
        if (q <= 0.0) {
            return sorted.front();
        }
        const auto n = sorted.size();
        auto rank = static_cast<std::size_t>(
            std::max<long long>(1, static_cast<long long>(
                                       (q / 100.0) * static_cast<f64>(n) +
                                       0.999999)));
        rank = std::min(rank, n);
        return sorted[rank - 1];
    }

    f64 p50() const { return percentile(50.0); }
    f64 p90() const { return percentile(90.0); }
    f64 p99() const { return percentile(99.0); }

    f64
    mean() const
    {
        if (samples_.empty()) {
            return 0;
        }
        f64 sum = 0;
        for (f64 v : samples_) {
            sum += v;
        }
        return sum / static_cast<f64>(samples_.size());
    }

    const std::vector<f64> &samples() const { return samples_; }

  private:
    std::vector<f64> samples_;
};

/**
 * Fixed-width bucket histogram over [lo, hi); values outside are clamped
 * into the edge buckets.
 */
class Histogram
{
  public:
    Histogram(f64 lo, f64 hi, std::size_t buckets)
        : lo_(lo), hi_(hi), counts_(buckets, 0)
    {
        MEDUSA_CHECK(hi > lo && buckets > 0, "bad histogram bounds");
    }

    void
    add(f64 v)
    {
        f64 frac = (v - lo_) / (hi_ - lo_);
        auto idx = static_cast<long long>(
            frac * static_cast<f64>(counts_.size()));
        idx = std::clamp<long long>(
            idx, 0, static_cast<long long>(counts_.size()) - 1);
        ++counts_[static_cast<std::size_t>(idx)];
        ++total_;
    }

    u64 bucketCount(std::size_t i) const { return counts_.at(i); }
    std::size_t buckets() const { return counts_.size(); }
    u64 total() const { return total_; }

  private:
    f64 lo_;
    f64 hi_;
    std::vector<u64> counts_;
    u64 total_ = 0;
};

/** Format a byte count with binary units, e.g. "7.4GiB". */
std::string formatBytes(u64 bytes);

/** Format virtual nanoseconds as seconds with fixed precision. */
std::string formatSeconds(SimTimeNs ns);

} // namespace medusa

#endif // MEDUSA_COMMON_STATS_H
