/**
 * @file
 * Fundamental type aliases and unit helpers shared by every Medusa
 * subsystem.
 */

#ifndef MEDUSA_COMMON_TYPES_H
#define MEDUSA_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace medusa {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

/**
 * A simulated device (GPU) virtual address. Device addresses live in a
 * high canonical range (see simcuda::DeviceMemoryManager) so that Medusa's
 * pointer-vs-constant classification heuristic has the same signal it has
 * on real hardware.
 */
using DeviceAddr = u64;

/**
 * A simulated kernel function address. Kernel addresses are randomized on
 * every GpuProcess launch, mirroring ASLR of real process address spaces.
 */
using KernelAddr = u64;

/** Simulated virtual time, in nanoseconds. */
using SimTimeNs = i64;

namespace units {

constexpr u64 KiB = 1024ull;
constexpr u64 MiB = 1024ull * KiB;
constexpr u64 GiB = 1024ull * MiB;

constexpr SimTimeNs usToNs(f64 us) { return static_cast<SimTimeNs>(us * 1e3); }
constexpr SimTimeNs msToNs(f64 ms) { return static_cast<SimTimeNs>(ms * 1e6); }
constexpr SimTimeNs secToNs(f64 s) { return static_cast<SimTimeNs>(s * 1e9); }
constexpr f64 nsToUs(SimTimeNs ns) { return static_cast<f64>(ns) / 1e3; }
constexpr f64 nsToMs(SimTimeNs ns) { return static_cast<f64>(ns) / 1e6; }
constexpr f64 nsToSec(SimTimeNs ns) { return static_cast<f64>(ns) / 1e9; }

} // namespace units

} // namespace medusa

#endif // MEDUSA_COMMON_TYPES_H
