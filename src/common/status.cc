#include "common/status.h"

namespace medusa {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
      case StatusCode::kOutOfMemory: return "OUT_OF_MEMORY";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kCaptureViolation: return "CAPTURE_VIOLATION";
      case StatusCode::kValidationFailure: return "VALIDATION_FAILURE";
      case StatusCode::kInternal: return "INTERNAL";
      case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
      case StatusCode::kFaultInjected: return "FAULT_INJECTED";
    }
    return "UNKNOWN";
}

std::string
Status::toString() const
{
    if (isOk()) {
        return "OK";
    }
    std::string out = statusCodeName(code_);
    out += ": ";
    out += message_;
    return out;
}

Status
invalidArgument(std::string msg)
{
    return Status(StatusCode::kInvalidArgument, std::move(msg));
}

Status
notFound(std::string msg)
{
    return Status(StatusCode::kNotFound, std::move(msg));
}

Status
alreadyExists(std::string msg)
{
    return Status(StatusCode::kAlreadyExists, std::move(msg));
}

Status
outOfMemory(std::string msg)
{
    return Status(StatusCode::kOutOfMemory, std::move(msg));
}

Status
failedPrecondition(std::string msg)
{
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
}

Status
captureViolation(std::string msg)
{
    return Status(StatusCode::kCaptureViolation, std::move(msg));
}

Status
validationFailure(std::string msg)
{
    return Status(StatusCode::kValidationFailure, std::move(msg));
}

Status
internalError(std::string msg)
{
    return Status(StatusCode::kInternal, std::move(msg));
}

Status
unimplemented(std::string msg)
{
    return Status(StatusCode::kUnimplemented, std::move(msg));
}

} // namespace medusa
