/**
 * @file
 * A small fixed-size thread pool for host-side parallelism.
 *
 * Medusa's restore pipeline uses the pool to overlap CPU-bound work
 * (artifact section decoding, graph rebuilding) across cores. The pool
 * is deliberately work-stealing-free: parallelFor() partitions an index
 * range into one contiguous chunk per worker, so the assignment of work
 * to threads is a pure function of (n, thread count) and every run
 * touches each output slot from exactly one thread. Determinism of the
 * *results* is then the caller's only obligation: workers must write
 * disjoint, pre-sized slots and never touch shared mutable state (the
 * simulated clock in particular stays on the calling thread).
 */

#ifndef MEDUSA_COMMON_THREAD_POOL_H
#define MEDUSA_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/types.h"

namespace medusa {

/**
 * Fixed worker set with a shared FIFO queue; see file comment.
 */
class ThreadPool
{
  public:
    /**
     * Spawn @p num_threads workers. 0 resolves to the hardware
     * concurrency. A pool of size 1 still spawns one worker, so task
     * execution is always off the calling thread (keeps TSan coverage
     * honest even in degenerate configurations).
     */
    explicit ThreadPool(u32 num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    u32 size() const { return static_cast<u32>(workers_.size()); }

    /**
     * Run body(i) for every i in [0, n), partitioned into size()
     * contiguous chunks, and block until all complete. The calling
     * thread participates (it runs the first chunk), so a pool is never
     * slower than serial execution by more than the dispatch overhead.
     * @p body must not throw.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /** Enqueue one task; returns immediately. */
    void submit(std::function<void()> task);

    /** Block until every queued and running task has finished. */
    void waitIdle();

    /** std::thread::hardware_concurrency with a floor of 1. */
    static u32 hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    u64 in_flight_ = 0;
    bool stop_ = false;
};

} // namespace medusa

#endif // MEDUSA_COMMON_THREAD_POOL_H
