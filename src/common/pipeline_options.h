/**
 * @file
 * Cross-cutting pipeline knobs shared by the offline materializer
 * (OfflineOptions), the online restore engines (RestoreOptions, both
 * single-GPU and TP) and the cluster simulator (ClusterOptions). Each
 * of those structs embeds one PipelineOptions so lint / validation /
 * fault-injection / observability are configured identically on every
 * path instead of through per-struct duplicate fields.
 */

#ifndef MEDUSA_COMMON_PIPELINE_OPTIONS_H
#define MEDUSA_COMMON_PIPELINE_OPTIONS_H

#include <vector>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "common/types.h"

namespace medusa {

/** See file comment. All pointers are borrowed and may be null. */
struct PipelineOptions
{
    /**
     * Run medusa-lint over the artifact (before restoring online, after
     * materializing offline) and refuse to proceed on any
     * error-severity diagnostic.
     */
    bool lint = false;
    /** Compare restored/captured graph outputs against eager forward. */
    bool validate = false;
    /** Batch sizes exercised when validate is set. */
    std::vector<u32> validate_batch_sizes = {1, 4, 64};
    /**
     * Deterministic fault injection (test/bench only). Null disables
     * every hook; the pipeline is then bit-identical to a build
     * without the subsystem.
     */
    FaultInjector *fault = nullptr;
    /**
     * Span sink for the run. Engines always collect their own spans
     * into the ColdStartReport; when this is set they additionally
     * stream into the caller's recorder (e.g. a bench aggregating
     * several cold starts into one timeline). Null = no extra sink.
     */
    TraceRecorder *trace = nullptr;
    /**
     * Metrics sink: engine-local counters are merged into this
     * registry after the run (in addition to the snapshot embedded in
     * the ColdStartReport). Null = report-only.
     */
    MetricsRegistry *metrics = nullptr;
};

} // namespace medusa

#endif // MEDUSA_COMMON_PIPELINE_OPTIONS_H
