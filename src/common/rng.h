/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every source of randomness in the simulator (ASLR bases, allocator
 * jitter, workload arrivals, weight contents) draws from an explicitly
 * seeded Rng so that runs are reproducible bit-for-bit.
 */

#ifndef MEDUSA_COMMON_RNG_H
#define MEDUSA_COMMON_RNG_H

#include <cmath>

#include "common/types.h"

namespace medusa {

/**
 * SplitMix64 generator used to expand a single seed into independent
 * streams (e.g. to seed one Rng per subsystem).
 */
class SplitMix64
{
  public:
    explicit SplitMix64(u64 seed) : state_(seed) {}

    /** Return the next 64-bit value. */
    u64
    next()
    {
        u64 z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    u64 state_;
};

/**
 * xoshiro256** — fast, high-quality generator with convenience
 * distributions. Not thread-safe; give each component its own instance.
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion, per the xoshiro authors' advice. */
    explicit Rng(u64 seed)
    {
        SplitMix64 sm(seed);
        for (auto &s : state_) {
            s = sm.next();
        }
    }

    /** Uniform 64-bit value. */
    u64
    nextU64()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform in [0, bound); bound must be nonzero. */
    u64
    nextBounded(u64 bound)
    {
        // Rejection sampling to avoid modulo bias.
        const u64 threshold = (0 - bound) % bound;
        for (;;) {
            u64 r = nextU64();
            if (r >= threshold) {
                return r % bound;
            }
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    i64
    nextIntIn(i64 lo, i64 hi)
    {
        return lo + static_cast<i64>(
                        nextBounded(static_cast<u64>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    f64
    nextDouble()
    {
        return static_cast<f64>(nextU64() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [-1, 1); used for synthetic tensor contents. */
    f32
    nextSymmetricFloat()
    {
        return static_cast<f32>(nextDouble() * 2.0 - 1.0);
    }

    /** Exponentially distributed value with the given rate (1/mean). */
    f64
    nextExponential(f64 rate)
    {
        f64 u = nextDouble();
        // Guard against log(0).
        if (u <= 0.0) {
            u = 0x1.0p-53;
        }
        return -std::log(u) / rate;
    }

    /** Standard normal via Box-Muller. */
    f64
    nextGaussian()
    {
        f64 u1 = nextDouble();
        f64 u2 = nextDouble();
        if (u1 <= 0.0) {
            u1 = 0x1.0p-53;
        }
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    }

    /** Log-normal with the given underlying mu/sigma. */
    f64
    nextLogNormal(f64 mu, f64 sigma)
    {
        return std::exp(mu + sigma * nextGaussian());
    }

    /** Fork an independent generator (for per-component streams). */
    Rng
    fork()
    {
        return Rng(nextU64());
    }

    /**
     * Order-sensitive digest of the generator state. Two Rngs with
     * equal hashes produce identical future draws — the property the
     * rollback tests use to prove a reset process is indistinguishable
     * from a fresh one.
     */
    u64
    stateHash() const
    {
        u64 h = 0x9e3779b97f4a7c15ull;
        for (u64 s : state_) {
            h ^= s + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        }
        return h;
    }

  private:
    static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

    u64 state_[4];
};

/**
 * Block-buffered Rng: refills a fixed block of raw 64-bit draws at a
 * time so the xoshiro state updates run back-to-back (the compiler
 * keeps the four state words in registers across the whole refill
 * loop), then serves draws from the buffer. Bulk consumers — the
 * synthetic workload generator feeding the 10^7-event cluster runs —
 * draw millions of values; batching roughly halves the per-draw cost.
 *
 * Determinism contract: a BatchRng(seed) produces *exactly* the u64
 * stream of Rng(seed), draw for draw, whatever mix of distribution
 * helpers is used (common_test pins this), so swapping one for the
 * other never changes a seeded workload.
 */
class BatchRng
{
  public:
    explicit BatchRng(u64 seed) : rng_(seed) { refill(); }

    u64
    nextU64()
    {
        if (pos_ == kBlock) {
            refill();
        }
        return block_[pos_++];
    }

    /** Uniform in [0, bound); bound must be nonzero. */
    u64
    nextBounded(u64 bound)
    {
        const u64 threshold = (0 - bound) % bound;
        for (;;) {
            u64 r = nextU64();
            if (r >= threshold) {
                return r % bound;
            }
        }
    }

    /** Uniform double in [0, 1). */
    f64
    nextDouble()
    {
        return static_cast<f64>(nextU64() >> 11) * 0x1.0p-53;
    }

    /** Exponentially distributed value with the given rate (1/mean). */
    f64
    nextExponential(f64 rate)
    {
        f64 u = nextDouble();
        if (u <= 0.0) {
            u = 0x1.0p-53;
        }
        return -std::log(u) / rate;
    }

    /** Standard normal via Box-Muller. */
    f64
    nextGaussian()
    {
        f64 u1 = nextDouble();
        f64 u2 = nextDouble();
        if (u1 <= 0.0) {
            u1 = 0x1.0p-53;
        }
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    }

    /** Log-normal with the given underlying mu/sigma. */
    f64
    nextLogNormal(f64 mu, f64 sigma)
    {
        return std::exp(mu + sigma * nextGaussian());
    }

    /** Pareto with scale @p xm and shape @p alpha (heavy tails). */
    f64
    nextPareto(f64 xm, f64 alpha)
    {
        f64 u = nextDouble();
        if (u <= 0.0) {
            u = 0x1.0p-53;
        }
        return xm * std::pow(u, -1.0 / alpha);
    }

  private:
    static constexpr std::size_t kBlock = 1024;

    void
    refill()
    {
        for (auto &v : block_) {
            v = rng_.nextU64();
        }
        pos_ = 0;
    }

    Rng rng_;
    u64 block_[kBlock];
    std::size_t pos_ = 0;
};

} // namespace medusa

#endif // MEDUSA_COMMON_RNG_H
