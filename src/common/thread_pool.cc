#include "common/thread_pool.h"

#include <algorithm>

namespace medusa {

ThreadPool::ThreadPool(u32 num_threads)
{
    const u32 n = num_threads == 0 ? hardwareThreads() : num_threads;
    workers_.reserve(n);
    for (u32 i = 0; i < n; ++i) {
        workers_.emplace_back([this]() { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &w : workers_) {
        w.join();
    }
}

u32
ThreadPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        queue_.push(std::move(task));
        ++in_flight_;
    }
    work_cv_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this]() { return in_flight_ == 0; });
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0) {
        return;
    }
    // One contiguous chunk per participant (workers + the caller); the
    // deterministic partition documented in the header.
    const std::size_t participants =
        std::min<std::size_t>(n, static_cast<std::size_t>(size()) + 1);
    const std::size_t base = n / participants;
    const std::size_t extra = n % participants;
    auto chunkBounds = [&](std::size_t c) {
        const std::size_t begin =
            c * base + std::min<std::size_t>(c, extra);
        return std::pair<std::size_t, std::size_t>(
            begin, begin + base + (c < extra ? 1 : 0));
    };
    for (std::size_t c = 1; c < participants; ++c) {
        submit([&body, chunkBounds, c]() {
            const auto [begin, end] = chunkBounds(c);
            for (std::size_t i = begin; i < end; ++i) {
                body(i);
            }
        });
    }
    const auto [begin, end] = chunkBounds(0);
    for (std::size_t i = begin; i < end; ++i) {
        body(i);
    }
    waitIdle();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock,
                          [this]() { return stop_ || !queue_.empty(); });
            if (queue_.empty()) {
                return; // stop_ set and nothing left to drain
            }
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mu_);
            if (--in_flight_ == 0) {
                idle_cv_.notify_all();
            }
        }
    }
}

} // namespace medusa
