#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace medusa {

namespace {

/** Escape for JSON keys (metric names are plain ASCII in practice). */
void
appendJsonString(std::string &out, std::string_view s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** Shortest-round-trip double formatting; NaN/inf become null. */
void
appendJsonNumber(std::string &out, f64 v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Prefer a shorter form when it round-trips.
    for (int prec = 1; prec < 17; ++prec) {
        char probe[64];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
        if (std::strtod(probe, nullptr) == v) {
            std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
            break;
        }
    }
    out += buf;
}

} // namespace

HistogramMetric::HistogramMetric(f64 lo, f64 hi, u32 buckets)
    : lo_(lo), hi_(hi), buckets_(std::max<u32>(buckets, 1), 0)
{
    MEDUSA_CHECK(hi > lo, "histogram range must be non-empty");
}

void
HistogramMetric::record(f64 value)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto n = static_cast<f64>(buckets_.size());
    auto idx = static_cast<i64>((value - lo_) / (hi_ - lo_) * n);
    idx = std::clamp<i64>(idx, 0, static_cast<i64>(buckets_.size()) - 1);
    ++buckets_[static_cast<std::size_t>(idx)];
    ++count_;
    sum_ += value;
}

u64
HistogramMetric::count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
}

f64
HistogramMetric::sum() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
}

std::vector<u64>
HistogramMetric::bucketCounts() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return buckets_;
}

MetricsSnapshot::MetricsSnapshot(std::vector<MetricsEntry> entries)
    : entries_(std::move(entries))
{
    std::sort(entries_.begin(), entries_.end(),
              [](const MetricsEntry &a, const MetricsEntry &b) {
                  return a.name < b.name;
              });
}

const MetricsEntry *
MetricsSnapshot::find(std::string_view name) const
{
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), name,
        [](const MetricsEntry &e, std::string_view n) { return e.name < n; });
    if (it == entries_.end() || it->name != name) {
        return nullptr;
    }
    return &*it;
}

u64
MetricsSnapshot::counterValue(std::string_view name) const
{
    const MetricsEntry *e = find(name);
    return e != nullptr ? e->counter : 0;
}

f64
MetricsSnapshot::gaugeValue(std::string_view name) const
{
    const MetricsEntry *e = find(name);
    return e != nullptr ? e->gauge : 0.0;
}

bool
MetricsSnapshot::has(std::string_view name) const
{
    return find(name) != nullptr;
}

std::string
MetricsSnapshot::toJson() const
{
    std::string out;
    out += "{\"schema_version\":";
    out += std::to_string(kMetricsJsonSchemaVersion);
    out += ",\"metrics\":{";
    bool first = true;
    for (const MetricsEntry &e : entries_) {
        if (!first) {
            out += ',';
        }
        first = false;
        appendJsonString(out, e.name);
        out += ':';
        switch (e.kind) {
        case MetricsEntry::Kind::kCounter:
            out += std::to_string(e.counter);
            break;
        case MetricsEntry::Kind::kGauge:
            appendJsonNumber(out, e.gauge);
            break;
        case MetricsEntry::Kind::kHistogram:
            out += "{\"count\":";
            out += std::to_string(e.histo_count);
            out += ",\"sum\":";
            appendJsonNumber(out, e.histo_sum);
            out += ",\"lo\":";
            appendJsonNumber(out, e.histo_lo);
            out += ",\"hi\":";
            appendJsonNumber(out, e.histo_hi);
            out += ",\"buckets\":[";
            for (std::size_t i = 0; i < e.histo_buckets.size(); ++i) {
                if (i != 0) {
                    out += ',';
                }
                out += std::to_string(e.histo_buckets[i]);
            }
            out += "]}";
            break;
        }
    }
    out += "}}";
    return out;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(name);
    if (it == slots_.end()) {
        Slot slot;
        slot.kind = MetricsEntry::Kind::kCounter;
        slot.counter = std::make_unique<Counter>();
        it = slots_.emplace(std::string(name), std::move(slot)).first;
    }
    MEDUSA_CHECK(it->second.kind == MetricsEntry::Kind::kCounter, "metric re-registered with a different kind");
    return *it->second.counter;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(name);
    if (it == slots_.end()) {
        Slot slot;
        slot.kind = MetricsEntry::Kind::kGauge;
        slot.gauge = std::make_unique<Gauge>();
        it = slots_.emplace(std::string(name), std::move(slot)).first;
    }
    MEDUSA_CHECK(it->second.kind == MetricsEntry::Kind::kGauge, "metric re-registered with a different kind");
    return *it->second.gauge;
}

HistogramMetric &
MetricsRegistry::histogram(std::string_view name, f64 lo, f64 hi, u32 buckets)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(name);
    if (it == slots_.end()) {
        Slot slot;
        slot.kind = MetricsEntry::Kind::kHistogram;
        slot.histogram = std::make_unique<HistogramMetric>(lo, hi, buckets);
        it = slots_.emplace(std::string(name), std::move(slot)).first;
    }
    MEDUSA_CHECK(it->second.kind == MetricsEntry::Kind::kHistogram, "metric re-registered with a different kind");
    return *it->second.histogram;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::vector<MetricsEntry> entries;
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(slots_.size());
    for (const auto &[name, slot] : slots_) {
        MetricsEntry e;
        e.name = name;
        e.kind = slot.kind;
        switch (slot.kind) {
        case MetricsEntry::Kind::kCounter:
            e.counter = slot.counter->value();
            break;
        case MetricsEntry::Kind::kGauge:
            e.gauge = slot.gauge->value();
            break;
        case MetricsEntry::Kind::kHistogram:
            e.histo_lo = slot.histogram->lo();
            e.histo_hi = slot.histogram->hi();
            e.histo_buckets = slot.histogram->bucketCounts();
            e.histo_count = slot.histogram->count();
            e.histo_sum = slot.histogram->sum();
            break;
        }
        entries.push_back(std::move(e));
    }
    return MetricsSnapshot(std::move(entries));
}

void
MetricsRegistry::mergeFrom(const MetricsSnapshot &snap)
{
    for (const MetricsEntry &e : snap.entries()) {
        switch (e.kind) {
        case MetricsEntry::Kind::kCounter:
            counter(e.name).add(e.counter);
            break;
        case MetricsEntry::Kind::kGauge:
            gauge(e.name).add(e.gauge);
            break;
        case MetricsEntry::Kind::kHistogram: {
            HistogramMetric &h = histogram(
                e.name, e.histo_lo, e.histo_hi,
                static_cast<u32>(e.histo_buckets.size()));
            // Replay bucket midpoints; count/sum stay faithful because
            // the shapes match for same-named histograms.
            const f64 width =
                (e.histo_hi - e.histo_lo) /
                static_cast<f64>(e.histo_buckets.size());
            for (std::size_t i = 0; i < e.histo_buckets.size(); ++i) {
                const f64 mid =
                    e.histo_lo + (static_cast<f64>(i) + 0.5) * width;
                for (u64 n = 0; n < e.histo_buckets[i]; ++n) {
                    h.record(mid);
                }
            }
            break;
        }
        }
    }
}

std::string
MetricsRegistry::toJson() const
{
    return snapshot().toJson();
}

} // namespace medusa
