/**
 * @file
 * The consolidated cold-start reporting schema (DESIGN.md §12). Every
 * cold-start driver — the baseline strategies (llm::BaselineEngine),
 * the single-GPU Medusa restore (core::MedusaEngine) and the
 * tensor-parallel driver (core::TpMedusaEngine) — fills one
 * ColdStartReport: status, outcome, per-stage times, restore counters,
 * the run's spans and a metrics snapshot. Benches and the cluster
 * simulator consume this one schema instead of five per-subsystem
 * structs.
 *
 * StageTimes and RestoreReport are defined here (they predate the
 * unified report) and re-exported from their historical namespaces
 * (llm::StageTimes, core::RestoreReport) for back-compat.
 */

#ifndef MEDUSA_COMMON_COLD_START_REPORT_H
#define MEDUSA_COMMON_COLD_START_REPORT_H

#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "common/types.h"

namespace medusa {

/** Measured per-stage latencies and the composed visible latencies. */
struct StageTimes
{
    // Raw per-stage durations (virtual seconds).
    f64 struct_init = 0;
    f64 weights = 0;
    f64 tokenizer = 0;
    f64 kv_init = 0;
    f64 capture = 0;

    /** Runtime (container/Python) initialization before loading. */
    f64 runtime_init = 0;
    /** Composed, visible loading-phase latency for the strategy. */
    f64 loading = 0;

    f64 coldStart() const { return runtime_init + loading; }
    /** Sum of the raw stage durations (the fully-serial lower bound). */
    f64
    serialSum() const
    {
        return struct_init + weights + tokenizer + kv_init + capture;
    }
};

/** What the restoration did (for benches and tests). */
struct RestoreReport
{
    u64 nodes_restored = 0;
    u64 graphs_restored = 0;
    u64 kernels_via_dlsym = 0;
    u64 kernels_via_enumeration = 0;
    u64 replayed_allocs = 0;
    u64 replayed_frees = 0;
    u64 restored_content_bytes = 0;
    /** Indirect pointer words rewritten after replay (§8 extension). */
    u64 indirect_pointers_fixed = 0;
    bool validated = false;

    // ---- v6 relocation-patch path (zero for the rebuild path) --------
    /** Relocation entries applied by the in-place patch pass. */
    u64 relocations_applied = 0;
    /** Distinct kernels resolved for the image's kernel table. */
    u64 kernels_resolved = 0;
    /** Graphs instantiated directly from the patched image. */
    u64 graphs_patched = 0;

    // ---- transactional-restore outcome (all zero without faults) -----
    /** Restore attempts started (1 for a clean first-try success). */
    u64 restore_attempts = 0;
    /** Attempts that failed and were rolled back. */
    u64 restore_failures = 0;
    /** Failed attempts that were retried (kRetryThenVanilla). */
    u64 retries = 0;
    /** True when the engine degraded to the vanilla cold start. */
    bool fallback_vanilla = false;
    /** Simulated seconds burned in failed restore attempts. */
    f64 wasted_restore_sec = 0;
    /** Simulated seconds slept in retry backoff. */
    f64 backoff_sec = 0;
    /** toString() of the last attempt failure (empty when none). */
    std::string last_failure;
};

/** How the cold start concluded. */
enum class ColdStartOutcome : u8
{
    /** A plain (baseline or vanilla-offline) cold start. */
    kColdStart = 0,
    /** Medusa restore succeeded on the first attempt. */
    kRestored,
    /** Medusa restore succeeded after >= 1 rolled-back retry. */
    kRestoredAfterRetry,
    /** Restore failed; the engine degraded to the vanilla path. */
    kFellBack,
};

const char *outcomeName(ColdStartOutcome outcome);

/** See file comment. */
struct ColdStartReport
{
    /** Overall result (OK even when the engine fell back). */
    Status status = Status::ok();
    ColdStartOutcome outcome = ColdStartOutcome::kColdStart;
    /** strategyName() of the path that produced the live engine. */
    std::string strategy;
    StageTimes times;
    /** Restore counters (default-initialized for baseline engines). */
    RestoreReport restore;
    /** The run's spans/instants, in canonical order, simulated time. */
    std::vector<TraceEvent> spans;
    MetricsSnapshot metrics;

    /** Total virtual seconds spent in spans named @p name. */
    f64 spanSec(std::string_view name) const;
    /** Number of events (spans or instants) named @p name. */
    u64 spanCount(std::string_view name) const;
    bool hasSpan(std::string_view name) const { return spanCount(name) > 0; }

    f64 loadingSec() const { return times.loading; }
    f64 coldStartSec() const { return times.coldStart(); }
};

/**
 * Publish the RestoreReport counters under the canonical `restore.*`
 * metric names (DESIGN.md §12 naming table).
 */
void publishRestoreMetrics(const RestoreReport &report,
                           MetricsRegistry &registry);

} // namespace medusa

#endif // MEDUSA_COMMON_COLD_START_REPORT_H
