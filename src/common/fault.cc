#include "common/fault.h"

#include <cctype>
#include <cstdlib>
#include <memory>

#include "common/plan_spec.h"

namespace medusa {

namespace {

struct PointName
{
    FaultPoint point;
    const char *name;
};

constexpr PointName kPointNames[] = {
    {FaultPoint::kArtifactDeserialize, "deserialize"},
    {FaultPoint::kArtifactCrc, "crc"},
    {FaultPoint::kCacheLoader, "cache_loader"},
    {FaultPoint::kReplayPrefix, "replay_prefix"},
    {FaultPoint::kReplayAlloc, "replay_alloc"},
    {FaultPoint::kKernelDlsym, "dlsym"},
    {FaultPoint::kKernelEnumeration, "enumeration"},
    {FaultPoint::kGraphInstantiate, "instantiate"},
    {FaultPoint::kTpRankRestore, "tp_rank"},
    {FaultPoint::kTpLockstep, "tp_lockstep"},
    {FaultPoint::kClusterRestore, "cluster_restore"},
    {FaultPoint::kGraphBuild, "graph_build"},
    {FaultPoint::kImageOpen, "image_open"},
    {FaultPoint::kImagePatch, "image_patch"},
};

static_assert(sizeof(kPointNames) / sizeof(kPointNames[0]) ==
                  kFaultPointCount,
              "every FaultPoint needs a spec name");

/** Comma-separated list of every registered point name (for errors). */
std::string
validPointNames()
{
    std::string out;
    for (const PointName &pn : kPointNames) {
        if (!out.empty()) {
            out += ", ";
        }
        out += pn.name;
    }
    return out;
}

} // namespace

const char *
faultPointName(FaultPoint point)
{
    for (const PointName &pn : kPointNames) {
        if (pn.point == point) {
            return pn.name;
        }
    }
    return "?";
}

StatusOr<FaultPoint>
faultPointFromName(const std::string &name)
{
    for (const PointName &pn : kPointNames) {
        if (name == pn.name) {
            return pn.point;
        }
    }
    return invalidArgument("unknown fault point \"" + name +
                           "\" (valid: " + validPointNames() + ")");
}

Status
faultInjected(std::string msg)
{
    return Status(StatusCode::kFaultInjected, std::move(msg));
}

bool
FaultPlan::enabled() const
{
    for (const FaultRule &r : rules) {
        if (r.active()) {
            return true;
        }
    }
    return false;
}

// --------------------------------------------------------------- spec form

StatusOr<FaultPlan>
FaultPlan::fromSpec(const std::string &spec)
{
    FaultPlan plan;
    // A point may appear only once: a second rule would silently
    // overwrite the first, which is how fault schedules go stale
    // unnoticed in long env-var specs.
    std::array<bool, kFaultPointCount> seen{};
    for (const std::string &entry : splitSpecEntries(spec)) {
        // The point name is the longest registered name (or "seed")
        // prefixing the entry; modifiers follow. A plain scan for the
        // first modifier character would mis-split names that contain
        // one ("replay_prefix" ends in 'x').
        std::size_t name_len = 0;
        for (const PointName &pn : kPointNames) {
            const std::size_t n =
                std::char_traits<char>::length(pn.name);
            if (n > name_len && entry.compare(0, n, pn.name) == 0) {
                name_len = n;
            }
        }
        if (name_len < 4 && entry.compare(0, 4, "seed") == 0) {
            name_len = 4;
        }
        const std::size_t mod =
            name_len == 0 ? entry.find_first_of("=@x")
            : name_len < entry.size() ? name_len
                                      : std::string::npos;
        const std::string name =
            entry.substr(0, name_len == 0 ? mod : name_len);
        if (name == "seed") {
            if (mod == std::string::npos || entry[mod] != '=') {
                return invalidArgument("fault spec: seed needs =VALUE");
            }
            plan.seed = std::strtoull(entry.c_str() + mod + 1, nullptr,
                                      0);
            continue;
        }
        MEDUSA_ASSIGN_OR_RETURN(FaultPoint point,
                                faultPointFromName(name));
        if (seen[static_cast<std::size_t>(point)]) {
            return invalidArgument(
                "fault spec: duplicate rule for point \"" +
                std::string(faultPointName(point)) + "\"");
        }
        seen[static_cast<std::size_t>(point)] = true;
        FaultRule &rule = plan.rule(point);
        std::size_t i = mod;
        bool any = false;
        while (i != std::string::npos && i < entry.size()) {
            const char kind = entry[i];
            const char *begin = entry.c_str() + i + 1;
            char *after = nullptr;
            if (kind == '=') {
                rule.probability = std::strtod(begin, &after);
                if (after == begin || rule.probability < 0 ||
                    rule.probability > 1) {
                    return invalidArgument(
                        "fault spec: bad probability in \"" + entry +
                        "\"");
                }
            } else if (kind == '@') {
                rule.fire_on_hit = std::strtoull(begin, &after, 0);
                if (after == begin || rule.fire_on_hit == 0) {
                    return invalidArgument(
                        "fault spec: bad hit ordinal in \"" + entry +
                        "\"");
                }
            } else { // 'x'
                rule.max_fires = std::strtoull(begin, &after, 0);
                if (after == begin) {
                    return invalidArgument(
                        "fault spec: bad fire cap in \"" + entry + "\"");
                }
            }
            any = true;
            i = static_cast<std::size_t>(after - entry.c_str());
            if (i >= entry.size()) {
                break;
            }
            if (entry[i] != '=' && entry[i] != '@' && entry[i] != 'x') {
                return invalidArgument("fault spec: trailing junk in \"" +
                                       entry + "\"");
            }
        }
        if (!any) {
            // A bare point name means "always fire".
            rule.probability = 1.0;
        }
    }
    return plan;
}

std::string
FaultPlan::toSpec() const
{
    std::string out = "seed=" + std::to_string(seed);
    for (std::size_t i = 0; i < kFaultPointCount; ++i) {
        const FaultRule &r = rules[i];
        if (!r.active()) {
            continue;
        }
        out += ";";
        out += faultPointName(static_cast<FaultPoint>(i));
        if (r.probability > 0) {
            out += "=" + std::to_string(r.probability);
        }
        if (r.fire_on_hit != 0) {
            out += "@" + std::to_string(r.fire_on_hit);
        }
        if (r.max_fires != ~0ull) {
            out += "x" + std::to_string(r.max_fires);
        }
    }
    return out;
}

// --------------------------------------------------------------- JSON form

namespace {

Status
parseRuleObject(JsonScanner &s, FaultPlan &plan,
                std::array<bool, kFaultPointCount> &seen)
{
    if (!s.consume('{')) {
        return invalidArgument("fault json: expected rule object");
    }
    std::optional<FaultPoint> point;
    FaultRule rule;
    bool first = true;
    while (!s.consume('}')) {
        if (!first && !s.consume(',')) {
            return invalidArgument("fault json: expected , or }");
        }
        first = false;
        MEDUSA_ASSIGN_OR_RETURN(std::string key, s.string());
        if (!s.consume(':')) {
            return invalidArgument("fault json: expected :");
        }
        if (key == "point") {
            MEDUSA_ASSIGN_OR_RETURN(std::string name, s.string());
            MEDUSA_ASSIGN_OR_RETURN(FaultPoint p,
                                    faultPointFromName(name));
            point = p;
        } else if (key == "probability") {
            MEDUSA_ASSIGN_OR_RETURN(f64 v, s.number());
            if (v < 0 || v > 1) {
                return invalidArgument(
                    "fault json: probability out of [0, 1]");
            }
            rule.probability = v;
        } else if (key == "fire_on_hit") {
            MEDUSA_ASSIGN_OR_RETURN(f64 v, s.number());
            rule.fire_on_hit = static_cast<u64>(v);
        } else if (key == "max_fires") {
            MEDUSA_ASSIGN_OR_RETURN(f64 v, s.number());
            rule.max_fires = static_cast<u64>(v);
        } else {
            return invalidArgument("fault json: unknown rule key \"" +
                                   key + "\"");
        }
    }
    if (!point.has_value()) {
        return invalidArgument("fault json: rule missing \"point\"");
    }
    if (seen[static_cast<std::size_t>(*point)]) {
        return invalidArgument(
            "fault json: duplicate rule for point \"" +
            std::string(faultPointName(*point)) + "\"");
    }
    seen[static_cast<std::size_t>(*point)] = true;
    plan.rule(*point) = rule;
    return Status::ok();
}

} // namespace

StatusOr<FaultPlan>
FaultPlan::fromJson(const std::string &json)
{
    FaultPlan plan;
    std::array<bool, kFaultPointCount> seen{};
    JsonScanner s(json);
    if (!s.consume('{')) {
        return invalidArgument("fault json: expected top-level object");
    }
    bool first = true;
    while (!s.consume('}')) {
        if (!first && !s.consume(',')) {
            return invalidArgument("fault json: expected , or }");
        }
        first = false;
        MEDUSA_ASSIGN_OR_RETURN(std::string key, s.string());
        if (!s.consume(':')) {
            return invalidArgument("fault json: expected :");
        }
        if (key == "seed") {
            MEDUSA_ASSIGN_OR_RETURN(f64 v, s.number());
            plan.seed = static_cast<u64>(v);
        } else if (key == "rules") {
            if (!s.consume('[')) {
                return invalidArgument(
                    "fault json: \"rules\" must be an array");
            }
            if (s.peek() != ']') {
                do {
                    MEDUSA_RETURN_IF_ERROR(
                        parseRuleObject(s, plan, seen));
                } while (s.consume(','));
            }
            if (!s.consume(']')) {
                return invalidArgument("fault json: expected ]");
            }
        } else {
            return invalidArgument("fault json: unknown key \"" + key +
                                   "\"");
        }
    }
    return plan;
}

StatusOr<std::optional<FaultPlan>>
FaultPlan::fromEnv()
{
    const char *spec = std::getenv("MEDUSA_FAULT_PLAN");
    if (spec == nullptr || spec[0] == '\0') {
        return std::optional<FaultPlan>{};
    }
    const std::string text = spec;
    auto parsed = text.front() == '{' ? fromJson(text) : fromSpec(text);
    if (!parsed.isOk()) {
        return parsed.status();
    }
    FaultPlan plan = std::move(parsed).value();
    if (const char *seed = std::getenv("MEDUSA_FAULT_SEED");
        seed != nullptr && seed[0] != '\0') {
        plan.seed = std::strtoull(seed, nullptr, 0);
    }
    return std::optional<FaultPlan>(plan);
}

// ------------------------------------------------------------ FaultInjector

FaultInjector::FaultInjector(const FaultPlan &plan) : plan_(plan)
{
    streams_.reserve(kFaultPointCount);
    SplitMix64 sm(plan_.seed);
    for (std::size_t i = 0; i < kFaultPointCount; ++i) {
        streams_.emplace_back(sm.next());
    }
}

Status
FaultInjector::check(FaultPoint point, const std::string &detail)
{
    const std::size_t i = static_cast<std::size_t>(point);
    const FaultRule &rule = plan_.rules[i];
    std::lock_guard<std::mutex> lock(mu_);
    const u64 hit = ++hits_[i];
    if (fires_[i] >= rule.max_fires) {
        return Status::ok();
    }
    bool fire = rule.fire_on_hit != 0 && hit == rule.fire_on_hit;
    if (!fire && rule.probability > 0) {
        fire = streams_[i].nextDouble() < rule.probability;
    }
    if (!fire) {
        return Status::ok();
    }
    ++fires_[i];
    std::string msg = "[fault] injected failure at ";
    msg += faultPointName(point);
    msg += " (hit " + std::to_string(hit) + ")";
    if (!detail.empty()) {
        msg += ": " + detail;
    }
    return faultInjected(std::move(msg));
}

f64
FaultInjector::drawFraction(FaultPoint point)
{
    const std::size_t i = static_cast<std::size_t>(point);
    std::lock_guard<std::mutex> lock(mu_);
    return streams_[i].nextDouble();
}

u64
FaultInjector::hits(FaultPoint point) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_[static_cast<std::size_t>(point)];
}

u64
FaultInjector::fires(FaultPoint point) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return fires_[static_cast<std::size_t>(point)];
}

u64
FaultInjector::totalFires() const
{
    std::lock_guard<std::mutex> lock(mu_);
    u64 total = 0;
    for (u64 f : fires_) {
        total += f;
    }
    return total;
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    hits_.fill(0);
    fires_.fill(0);
    streams_.clear();
    SplitMix64 sm(plan_.seed);
    for (std::size_t i = 0; i < kFaultPointCount; ++i) {
        streams_.emplace_back(sm.next());
    }
}

FaultInjector *
envFaultInjector()
{
    static FaultInjector *injector = []() -> FaultInjector * {
        auto plan = FaultPlan::fromEnv();
        if (!plan.isOk() || !plan->has_value() || !(**plan).enabled()) {
            return nullptr;
        }
        static FaultInjector instance(**plan);
        return &instance;
    }();
    return injector;
}

} // namespace medusa
