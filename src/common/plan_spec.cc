#include "common/plan_spec.h"

#include <cctype>
#include <cstdlib>

namespace medusa {

std::vector<std::string>
splitSpecEntries(const std::string &spec)
{
    std::vector<std::string> entries;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t end = spec.find_first_of(";,", pos);
        if (end == std::string::npos) {
            end = spec.size();
        }
        std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        while (!entry.empty() &&
               std::isspace(static_cast<unsigned char>(entry.front())) !=
                   0) {
            entry.erase(entry.begin());
        }
        while (!entry.empty() &&
               std::isspace(static_cast<unsigned char>(entry.back())) !=
                   0) {
            entry.pop_back();
        }
        if (!entry.empty()) {
            entries.push_back(std::move(entry));
        }
        if (end == spec.size()) {
            break;
        }
    }
    return entries;
}

void
JsonScanner::skipSpace()
{
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
    }
}

bool
JsonScanner::consume(char c)
{
    skipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
        ++pos_;
        return true;
    }
    return false;
}

char
JsonScanner::peek()
{
    skipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
}

StatusOr<std::string>
JsonScanner::string()
{
    if (!consume('"')) {
        return invalidArgument("plan json: expected string");
    }
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\') {
            ++pos_;
            if (pos_ >= text_.size()) {
                break;
            }
        }
        out += text_[pos_++];
    }
    if (pos_ >= text_.size()) {
        return invalidArgument("plan json: unterminated string");
    }
    ++pos_; // closing quote
    return out;
}

StatusOr<f64>
JsonScanner::number()
{
    skipSpace();
    const char *begin = text_.c_str() + pos_;
    char *after = nullptr;
    const f64 v = std::strtod(begin, &after);
    if (after == begin) {
        return invalidArgument("plan json: expected number");
    }
    pos_ = static_cast<std::size_t>(after - text_.c_str());
    return v;
}

} // namespace medusa
