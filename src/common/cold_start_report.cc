#include "common/cold_start_report.h"

namespace medusa {

const char *
outcomeName(ColdStartOutcome outcome)
{
    switch (outcome) {
    case ColdStartOutcome::kColdStart:
        return "cold_start";
    case ColdStartOutcome::kRestored:
        return "restored";
    case ColdStartOutcome::kRestoredAfterRetry:
        return "restored_after_retry";
    case ColdStartOutcome::kFellBack:
        return "fell_back";
    }
    return "?";
}

f64
ColdStartReport::spanSec(std::string_view name) const
{
    i64 total_ns = 0;
    for (const TraceEvent &ev : spans) {
        if (ev.name == name && ev.phase == TraceEvent::Phase::kComplete) {
            total_ns += ev.dur_ns;
        }
    }
    return units::nsToSec(total_ns);
}

u64
ColdStartReport::spanCount(std::string_view name) const
{
    u64 n = 0;
    for (const TraceEvent &ev : spans) {
        if (ev.name == name) {
            ++n;
        }
    }
    return n;
}

void
publishRestoreMetrics(const RestoreReport &report, MetricsRegistry &registry)
{
    registry.counter("restore.nodes").add(report.nodes_restored);
    registry.counter("restore.graphs").add(report.graphs_restored);
    registry.counter("restore.kernels_via_dlsym")
        .add(report.kernels_via_dlsym);
    registry.counter("restore.kernels_via_enumeration")
        .add(report.kernels_via_enumeration);
    registry.counter("restore.replayed_allocs").add(report.replayed_allocs);
    registry.counter("restore.replayed_frees").add(report.replayed_frees);
    registry.counter("restore.content_bytes")
        .add(report.restored_content_bytes);
    registry.counter("restore.indirect_pointers_fixed")
        .add(report.indirect_pointers_fixed);
    registry.counter("restore.relocations_applied")
        .add(report.relocations_applied);
    registry.counter("restore.kernels_resolved")
        .add(report.kernels_resolved);
    registry.counter("restore.graphs_patched").add(report.graphs_patched);
    registry.counter("restore.attempts").add(report.restore_attempts);
    registry.counter("restore.failures").add(report.restore_failures);
    registry.counter("restore.retries").add(report.retries);
    if (report.fallback_vanilla) {
        registry.counter("restore.fallback_vanilla").add(1);
    }
    if (report.validated) {
        registry.counter("restore.validated").add(1);
    }
    registry.gauge("restore.wasted_sec").add(report.wasted_restore_sec);
    registry.gauge("restore.backoff_sec").add(report.backoff_sec);
}

} // namespace medusa
