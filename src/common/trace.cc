#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/logging.h"

namespace medusa {

namespace {

/** Minimal JSON string escaper (mirrors lint's appendJsonString). */
void
appendJsonString(std::string &out, std::string_view s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/**
 * Emit a nanosecond count as a microsecond decimal with three fraction
 * digits, without going through floating point (keeps export
 * byte-identical across libc printf implementations).
 */
void
appendMicros(std::string &out, i64 ns)
{
    if (ns < 0) {
        out += '-';
        ns = -ns;
    }
    out += std::to_string(ns / 1000);
    const i64 frac = ns % 1000;
    if (frac != 0) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), ".%03d", static_cast<int>(frac));
        out += buf;
    }
}

} // namespace

TraceRecorder
TraceRecorder::wallClock()
{
    return TraceRecorder(ClockFn([]() {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }));
}

u64
TraceRecorder::beginSpan(std::string_view name, std::string_view category,
                         u32 track)
{
    const i64 now = readClock();
    std::lock_guard<std::mutex> lock(mu_);
    const u64 handle = events_.size();
    TraceEvent ev;
    ev.name = std::string(name);
    ev.category = std::string(category);
    ev.phase = TraceEvent::Phase::kComplete;
    ev.track = track;
    ev.start_ns = now;
    events_.push_back(std::move(ev));
    open_.push_back(true);
    return handle;
}

void
TraceRecorder::endSpan(u64 handle)
{
    const i64 now = readClock();
    std::lock_guard<std::mutex> lock(mu_);
    MEDUSA_CHECK(handle < events_.size(), "bad span handle");
    if (!open_[handle]) {
        return;
    }
    open_[handle] = false;
    events_[handle].dur_ns = now - events_[handle].start_ns;
}

void
TraceRecorder::setArg(u64 handle, std::string_view key,
                      std::string_view value)
{
    std::lock_guard<std::mutex> lock(mu_);
    MEDUSA_CHECK(handle < events_.size(), "bad span handle");
    events_[handle].args.emplace_back(std::string(key), std::string(value));
}

void
TraceRecorder::instant(std::string_view name, std::string_view category,
                       u32 track)
{
    const i64 now = readClock();
    std::lock_guard<std::mutex> lock(mu_);
    TraceEvent ev;
    ev.name = std::string(name);
    ev.category = std::string(category);
    ev.phase = TraceEvent::Phase::kInstant;
    ev.track = track;
    ev.start_ns = now;
    events_.push_back(std::move(ev));
    open_.push_back(false);
}

void
TraceRecorder::complete(std::string_view name, std::string_view category,
                        u32 track, i64 start_ns, i64 dur_ns)
{
    std::lock_guard<std::mutex> lock(mu_);
    TraceEvent ev;
    ev.name = std::string(name);
    ev.category = std::string(category);
    ev.phase = TraceEvent::Phase::kComplete;
    ev.track = track;
    ev.start_ns = start_ns;
    ev.dur_ns = dur_ns;
    events_.push_back(std::move(ev));
    open_.push_back(false);
}

void
TraceRecorder::append(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(event));
    open_.push_back(false);
}

void
TraceRecorder::appendAll(std::span<const TraceEvent> events,
                         u32 track_offset)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const TraceEvent &ev : events) {
        events_.push_back(ev);
        events_.back().track += track_offset;
        open_.push_back(false);
    }
}

void
TraceRecorder::setTrackName(u32 track, std::string name)
{
    std::lock_guard<std::mutex> lock(mu_);
    track_names_[track] = std::move(name);
}

std::size_t
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

std::vector<TraceEvent>
TraceRecorder::events() const
{
    return eventsFrom(0);
}

std::vector<TraceEvent>
TraceRecorder::eventsFrom(std::size_t first) const
{
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = first; i < events_.size(); ++i) {
            if (open_[i]) {
                continue; // Never export half-open spans.
            }
            out.push_back(events_[i]);
        }
    }
    canonicalizeEventOrder(out);
    return out;
}

std::string
TraceRecorder::toChromeJson() const
{
    std::map<u32, std::string> names;
    {
        std::lock_guard<std::mutex> lock(mu_);
        names = track_names_;
    }
    return traceEventsToChromeJson(events(), names);
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    open_.clear();
}

void
canonicalizeEventOrder(std::vector<TraceEvent> &events)
{
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.start_ns != b.start_ns) {
                             return a.start_ns < b.start_ns;
                         }
                         if (a.track != b.track) {
                             return a.track < b.track;
                         }
                         // Longer span first so parents precede children
                         // that start at the same instant.
                         if (a.dur_ns != b.dur_ns) {
                             return a.dur_ns > b.dur_ns;
                         }
                         return a.name < b.name;
                     });
}

std::string
traceEventsToChromeJson(std::span<const TraceEvent> events,
                        const std::map<u32, std::string> &track_names)
{
    std::string out;
    out.reserve(256 + events.size() * 96);
    out += "{\"displayTimeUnit\":\"ms\",\"medusa\":{\"schema_version\":";
    out += std::to_string(kTraceJsonSchemaVersion);
    out += "},\"traceEvents\":[";
    bool first = true;
    for (const auto &[track, name] : track_names) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
        out += std::to_string(track);
        out += ",\"args\":{\"name\":";
        appendJsonString(out, name);
        out += "}}";
    }
    for (const TraceEvent &ev : events) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += "{\"name\":";
        appendJsonString(out, ev.name);
        if (!ev.category.empty()) {
            out += ",\"cat\":";
            appendJsonString(out, ev.category);
        }
        out += ",\"ph\":\"";
        out += ev.phase == TraceEvent::Phase::kComplete ? 'X' : 'i';
        out += "\",\"pid\":0,\"tid\":";
        out += std::to_string(ev.track);
        out += ",\"ts\":";
        appendMicros(out, ev.start_ns);
        if (ev.phase == TraceEvent::Phase::kComplete) {
            out += ",\"dur\":";
            appendMicros(out, ev.dur_ns);
        } else {
            out += ",\"s\":\"t\"";
        }
        if (!ev.args.empty()) {
            out += ",\"args\":{";
            bool first_arg = true;
            for (const auto &[key, value] : ev.args) {
                if (!first_arg) {
                    out += ',';
                }
                first_arg = false;
                appendJsonString(out, key);
                out += ':';
                appendJsonString(out, value);
            }
            out += '}';
        }
        out += '}';
    }
    out += "]}";
    return out;
}

} // namespace medusa
