/**
 * @file
 * Virtual simulation clock.
 *
 * All latencies in the reproduction are *simulated*: components advance a
 * SimClock by modelled costs instead of burning wall time. Benchmarks
 * report virtual seconds, which makes results deterministic and
 * hardware-independent while preserving the paper's latency structure.
 */

#ifndef MEDUSA_COMMON_CLOCK_H
#define MEDUSA_COMMON_CLOCK_H

#include "common/logging.h"
#include "common/types.h"

namespace medusa {

/**
 * A monotonically advancing virtual clock, in nanoseconds.
 */
class SimClock
{
  public:
    SimClock() = default;

    /** Current virtual time in nanoseconds. */
    SimTimeNs now() const { return now_ns_; }

    /** Current virtual time in (fractional) seconds. */
    f64 nowSec() const { return units::nsToSec(now_ns_); }

    /** Advance by a non-negative delta. */
    void
    advance(SimTimeNs delta_ns)
    {
        MEDUSA_CHECK(delta_ns >= 0,
                     "clock advanced by negative delta " << delta_ns);
        now_ns_ += delta_ns;
    }

    /** Jump forward to an absolute time, which must not be in the past. */
    void
    advanceTo(SimTimeNs t_ns)
    {
        MEDUSA_CHECK(t_ns >= now_ns_, "clock moved backwards: now="
                                          << now_ns_ << " target=" << t_ns);
        now_ns_ = t_ns;
    }

    /** Reset to zero (fresh simulated process). */
    void reset() { now_ns_ = 0; }

  private:
    SimTimeNs now_ns_ = 0;
};

/**
 * RAII span that measures elapsed virtual time between construction and
 * stop()/destruction, accumulating into a target duration.
 */
class ScopedTimer
{
  public:
    ScopedTimer(const SimClock &clock, SimTimeNs &accum)
        : clock_(clock), accum_(accum), start_(clock.now())
    {
    }

    ~ScopedTimer()
    {
        if (!stopped_) {
            stop();
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Stop early and record the elapsed span. */
    void
    stop()
    {
        accum_ += clock_.now() - start_;
        stopped_ = true;
    }

  private:
    const SimClock &clock_;
    SimTimeNs &accum_;
    SimTimeNs start_;
    bool stopped_ = false;
};

} // namespace medusa

#endif // MEDUSA_COMMON_CLOCK_H
