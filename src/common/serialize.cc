#include "common/serialize.h"

#include <filesystem>
#include <fstream>

namespace medusa {

Status
writeFile(const std::string &path, const std::vector<u8> &bytes)
{
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
        if (ec) {
            return internalError("cannot create directories for " + path +
                                 ": " + ec.message());
        }
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        return internalError("cannot open " + path + " for writing");
    }
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
        return internalError("short write to " + path);
    }
    return Status::ok();
}

StatusOr<std::vector<u8>>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
        return notFound("cannot open " + path);
    }
    const std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<u8> bytes(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char *>(bytes.data()), size);
    if (!in) {
        return internalError("short read from " + path);
    }
    return bytes;
}

} // namespace medusa
