/**
 * @file
 * Named-metric registry for the unified observability layer
 * (DESIGN.md §12): counters, gauges and fixed-bucket histograms keyed
 * by dotted lowercase names ("artifact_cache.hits",
 * "restore.wasted_sec"). The registry unifies the scattered
 * per-subsystem stats structs (`ArtifactCache::Stats`,
 * `serverless::TraceMetrics`, `AnalysisStats`, `RestoreReport`
 * counters), which survive as thin views built from a registry
 * snapshot.
 *
 * Naming convention: `subsystem.noun`, lowercase with underscores
 * inside a segment; unit-bearing metrics carry a `_sec` / `_bytes` /
 * `_us` suffix. Counters are monotonic u64; gauges are f64 set/add.
 *
 * Concurrency: metric handles returned by the registry are stable for
 * the registry's lifetime and individually thread-safe (atomics for
 * counter/gauge, a mutex for histogram), so hot paths hold a
 * `Counter &` and never re-lookup by name.
 */

#ifndef MEDUSA_COMMON_METRICS_H
#define MEDUSA_COMMON_METRICS_H

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace medusa {

/** Schema version stamped into exported metrics JSON. */
inline constexpr u32 kMetricsJsonSchemaVersion = 1;

/** Monotonic counter (thread-safe). */
class Counter
{
  public:
    void add(u64 delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
    u64 value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<u64> value_{0};
};

/** Last-write-wins floating-point gauge (thread-safe). */
class Gauge
{
  public:
    void set(f64 value) { value_.store(value, std::memory_order_relaxed); }

    void
    add(f64 delta)
    {
        f64 cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + delta,
                                             std::memory_order_relaxed)) {
        }
    }

    f64 value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<f64> value_{0.0};
};

/**
 * Fixed-range linear histogram; out-of-range samples clamp to the
 * first/last bucket (same contract as stats.h's Histogram).
 */
class HistogramMetric
{
  public:
    HistogramMetric(f64 lo, f64 hi, u32 buckets);

    void record(f64 value);

    u64 count() const;
    f64 sum() const;
    std::vector<u64> bucketCounts() const;
    f64 lo() const { return lo_; }
    f64 hi() const { return hi_; }

  private:
    f64 lo_;
    f64 hi_;
    mutable std::mutex mu_;
    std::vector<u64> buckets_;
    u64 count_ = 0;
    f64 sum_ = 0.0;
};

/** A point-in-time copy of one registry entry. */
struct MetricsEntry
{
    enum class Kind : u8
    {
        kCounter = 0,
        kGauge,
        kHistogram,
    };

    std::string name;
    Kind kind = Kind::kCounter;
    u64 counter = 0;
    f64 gauge = 0.0;
    /** Histogram payload (kind == kHistogram only). */
    f64 histo_lo = 0.0;
    f64 histo_hi = 0.0;
    std::vector<u64> histo_buckets;
    u64 histo_count = 0;
    f64 histo_sum = 0.0;
};

/**
 * Immutable snapshot of a registry, sorted by name. This is what a
 * ColdStartReport embeds and what the flat metrics JSON serializes.
 */
class MetricsSnapshot
{
  public:
    MetricsSnapshot() = default;
    explicit MetricsSnapshot(std::vector<MetricsEntry> entries);

    const std::vector<MetricsEntry> &entries() const { return entries_; }
    bool empty() const { return entries_.empty(); }

    /** Counter value by name; 0 when absent. */
    u64 counterValue(std::string_view name) const;

    /** Gauge value by name; 0.0 when absent. */
    f64 gaugeValue(std::string_view name) const;

    bool has(std::string_view name) const;

    /** {"schema_version":1,"metrics":{name:value,...}}. */
    std::string toJson() const;

  private:
    const MetricsEntry *find(std::string_view name) const;

    std::vector<MetricsEntry> entries_;
};

/**
 * The registry: name -> metric, creating on first use. Handles are
 * stable references; see file comment for the naming convention.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);

    /**
     * Histogram with fixed buckets; lo/hi/buckets are fixed by the
     * first caller (later calls with a different shape get the
     * existing histogram — names own their shape).
     */
    HistogramMetric &histogram(std::string_view name, f64 lo, f64 hi,
                               u32 buckets);

    MetricsSnapshot snapshot() const;

    /** Fold a snapshot in: counters add, gauges add, histograms merge. */
    void mergeFrom(const MetricsSnapshot &snap);

    /** snapshot().toJson() convenience. */
    std::string toJson() const;

  private:
    struct Slot
    {
        MetricsEntry::Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<HistogramMetric> histogram;
    };

    mutable std::mutex mu_;
    std::map<std::string, Slot, std::less<>> slots_;
};

} // namespace medusa

#endif // MEDUSA_COMMON_METRICS_H
