/**
 * @file
 * Shared parsing machinery for deterministic "plan" configs — the
 * restore-stack FaultPlan (common/fault.h) and the cluster ChaosPlan
 * (serverless/chaos.h). Both accept a compact `key=value;key@N` spec
 * form and a flat JSON-object form from an environment variable, and
 * both want identical tokenization and error behavior, so the
 * primitives live here instead of being copied per plan type.
 */

#ifndef MEDUSA_COMMON_PLAN_SPEC_H
#define MEDUSA_COMMON_PLAN_SPEC_H

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace medusa {

/**
 * Split a compact spec on ';' or ',' into whitespace-trimmed entries;
 * empty entries are dropped ("a;;b" yields {"a", "b"}).
 */
std::vector<std::string> splitSpecEntries(const std::string &spec);

/**
 * A minimal JSON-subset scanner for plan shapes: one object with
 * scalar members and optionally arrays of flat objects holding string
 * and number members. Not a general JSON parser.
 */
class JsonScanner
{
  public:
    explicit JsonScanner(const std::string &text) : text_(text) {}

    void skipSpace();

    /** Consume @p c (after whitespace); false if the next char differs. */
    bool consume(char c);

    /** Next non-space character without consuming it ('\0' at end). */
    char peek();

    /** Parse a double-quoted string (backslash escapes passed through). */
    StatusOr<std::string> string();

    /** Parse a number via strtod. */
    StatusOr<f64> number();

  private:
    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace medusa

#endif // MEDUSA_COMMON_PLAN_SPEC_H
