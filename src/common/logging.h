/**
 * @file
 * Minimal logging and fatal-error facilities.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (simulator bugs), fatal() for user/configuration errors. Both print a
 * formatted message; panic() aborts, fatal() exits with code 1.
 */

#ifndef MEDUSA_COMMON_LOGGING_H
#define MEDUSA_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace medusa {

/** Severity levels for the global logger. */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/** Global log level; messages below this level are suppressed. */
LogLevel logLevel();

/** Set the global log level (e.g. from tests to silence output). */
void setLogLevel(LogLevel level);

namespace detail {

/** Emit one formatted log record to stderr. */
void logMessage(LogLevel level, const char *file, int line,
                const std::string &msg);

/** Print message and abort; used for internal invariant violations. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print message and exit(1); used for user-caused errors. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

} // namespace detail

} // namespace medusa

#define MEDUSA_LOG(level, expr)                                              \
    do {                                                                     \
        if (static_cast<int>(level) >=                                       \
            static_cast<int>(::medusa::logLevel())) {                        \
            std::ostringstream medusa_log_oss;                               \
            medusa_log_oss << expr;                                          \
            ::medusa::detail::logMessage(level, __FILE__, __LINE__,          \
                                         medusa_log_oss.str());              \
        }                                                                    \
    } while (0)

#define LOG_DEBUG(expr) MEDUSA_LOG(::medusa::LogLevel::kDebug, expr)
#define LOG_INFO(expr) MEDUSA_LOG(::medusa::LogLevel::kInfo, expr)
#define LOG_WARN(expr) MEDUSA_LOG(::medusa::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) MEDUSA_LOG(::medusa::LogLevel::kError, expr)

/** Internal invariant violated: print and abort (simulator bug). */
#define MEDUSA_PANIC(expr)                                                   \
    do {                                                                     \
        std::ostringstream medusa_panic_oss;                                 \
        medusa_panic_oss << expr;                                            \
        ::medusa::detail::panicImpl(__FILE__, __LINE__,                      \
                                    medusa_panic_oss.str());                 \
    } while (0)

/** Unrecoverable user/configuration error: print and exit(1). */
#define MEDUSA_FATAL(expr)                                                   \
    do {                                                                     \
        std::ostringstream medusa_fatal_oss;                                 \
        medusa_fatal_oss << expr;                                            \
        ::medusa::detail::fatalImpl(__FILE__, __LINE__,                      \
                                    medusa_fatal_oss.str());                 \
    } while (0)

/** Assert-like check that is always on (also in release builds). */
#define MEDUSA_CHECK(cond, expr)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            MEDUSA_PANIC("check failed: " #cond ": " << expr);               \
        }                                                                    \
    } while (0)

#endif // MEDUSA_COMMON_LOGGING_H
