/**
 * @file
 * Error-handling vocabulary: Status and StatusOr<T>.
 *
 * The simulated CUDA layer reports recoverable errors (e.g. "operation not
 * permitted during stream capture") through Status values, mirroring how
 * cudaError_t behaves on real hardware. Simulator bugs use MEDUSA_PANIC
 * instead.
 */

#ifndef MEDUSA_COMMON_STATUS_H
#define MEDUSA_COMMON_STATUS_H

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace medusa {

/** Error taxonomy, loosely modelled on cudaError_t / absl::StatusCode. */
enum class StatusCode {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfMemory,
    kFailedPrecondition,
    /** Raised when a forbidden API is called during stream capture. */
    kCaptureViolation,
    /** Raised when restored state fails validation against ground truth. */
    kValidationFailure,
    kInternal,
    kUnimplemented,
    /** Raised by the fault-injection subsystem (common/fault.h). */
    kFaultInjected,
};

/** Human-readable name of a status code. */
const char *statusCodeName(StatusCode code);

/**
 * A cheap, value-semantic success/error result.
 */
class Status
{
  public:
    /** Construct an OK status. */
    Status() : code_(StatusCode::kOk) {}

    /** Construct an error status with a message. */
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status ok() { return Status(); }

    bool isOk() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** Render as "CODE: message" for logs and test failures. */
    std::string toString() const;

    bool operator==(const Status &other) const
    {
        return code_ == other.code_ && message_ == other.message_;
    }

  private:
    StatusCode code_;
    std::string message_;
};

/** Shorthand error constructors. */
Status invalidArgument(std::string msg);
Status notFound(std::string msg);
Status alreadyExists(std::string msg);
Status outOfMemory(std::string msg);
Status failedPrecondition(std::string msg);
Status captureViolation(std::string msg);
Status validationFailure(std::string msg);
Status internalError(std::string msg);
Status unimplemented(std::string msg);

/**
 * Either a value of type T or an error Status.
 *
 * @tparam T the success payload type.
 */
template <typename T>
class StatusOr
{
  public:
    /** Construct from a success value. */
    StatusOr(T value) : status_(Status::ok()), value_(std::move(value)) {}

    /** Construct from an error status; panics if passed an OK status. */
    StatusOr(Status status) : status_(std::move(status))
    {
        MEDUSA_CHECK(!status_.isOk(),
                     "StatusOr constructed from OK status without a value");
    }

    bool isOk() const { return status_.isOk(); }
    const Status &status() const { return status_; }

    /** Access the value; panics if this holds an error. */
    const T &
    value() const &
    {
        MEDUSA_CHECK(isOk(), "value() on error: " << status_.toString());
        return *value_;
    }

    T &
    value() &
    {
        MEDUSA_CHECK(isOk(), "value() on error: " << status_.toString());
        return *value_;
    }

    T &&
    value() &&
    {
        MEDUSA_CHECK(isOk(), "value() on error: " << status_.toString());
        return std::move(*value_);
    }

    const T &operator*() const & { return value(); }
    T &operator*() & { return value(); }
    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }

  private:
    Status status_;
    std::optional<T> value_;
};

/** Propagate an error status out of the current function. */
#define MEDUSA_RETURN_IF_ERROR(expr)                                         \
    do {                                                                     \
        ::medusa::Status medusa_st = (expr);                                 \
        if (!medusa_st.isOk()) {                                             \
            return medusa_st;                                                \
        }                                                                    \
    } while (0)

/** Assign from a StatusOr or propagate its error. */
#define MEDUSA_ASSIGN_OR_RETURN(lhs, expr)                                   \
    MEDUSA_ASSIGN_OR_RETURN_IMPL(                                            \
        MEDUSA_STATUS_CONCAT(medusa_sor_, __LINE__), lhs, expr)

#define MEDUSA_STATUS_CONCAT_INNER(a, b) a##b
#define MEDUSA_STATUS_CONCAT(a, b) MEDUSA_STATUS_CONCAT_INNER(a, b)

#define MEDUSA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)                         \
    auto tmp = (expr);                                                       \
    if (!tmp.isOk()) {                                                       \
        return tmp.status();                                                 \
    }                                                                        \
    lhs = std::move(tmp).value()

} // namespace medusa

#endif // MEDUSA_COMMON_STATUS_H
