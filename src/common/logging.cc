#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace medusa {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kWarn};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    return g_log_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_log_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void
logMessage(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s:%d: %s\n", levelName(level), file, line,
                 msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[PANIC] %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[FATAL] %s:%d: %s\n", file, line, msg.c_str());
    std::exit(1);
}

} // namespace detail

} // namespace medusa
