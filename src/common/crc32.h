/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
 * spans. The sectioned artifact format stores one checksum per section
 * so corruption is localized to the section that carries it and
 * detected before any replay state is touched.
 */

#ifndef MEDUSA_COMMON_CRC32_H
#define MEDUSA_COMMON_CRC32_H

#include <cstddef>

#include "common/types.h"

namespace medusa {

/** CRC-32 of @p size bytes at @p data (seeded with the standard ~0). */
u32 crc32(const void *data, std::size_t size);

} // namespace medusa

#endif // MEDUSA_COMMON_CRC32_H
