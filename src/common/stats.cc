#include "common/stats.h"

#include <cstdio>

namespace medusa {

std::string
formatBytes(u64 bytes)
{
    char buf[64];
    if (bytes >= units::GiB) {
        std::snprintf(buf, sizeof(buf), "%.1fGiB",
                      static_cast<f64>(bytes) / static_cast<f64>(units::GiB));
    } else if (bytes >= units::MiB) {
        std::snprintf(buf, sizeof(buf), "%.1fMiB",
                      static_cast<f64>(bytes) / static_cast<f64>(units::MiB));
    } else if (bytes >= units::KiB) {
        std::snprintf(buf, sizeof(buf), "%.1fKiB",
                      static_cast<f64>(bytes) / static_cast<f64>(units::KiB));
    } else {
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

std::string
formatSeconds(SimTimeNs ns)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3fs", units::nsToSec(ns));
    return buf;
}

} // namespace medusa
