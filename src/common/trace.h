/**
 * @file
 * medusa-trace: the hierarchical span recorder behind the unified
 * observability layer (DESIGN.md §12).
 *
 * A TraceRecorder collects timestamped events — nested spans, instants
 * and pre-timed complete events — against an *injected clock*, so the
 * same recorder type serves both the simulated clock (SimClock, the
 * default throughout the reproduction) and host wall time. Recorders
 * are thread-safe; events may be appended from ThreadPool workers.
 *
 * Two disciplines keep the layer honest:
 *
 *  - zero cost when disabled: every instrumentation site holds a
 *    `TraceRecorder *` that is null in production. The RAII Span
 *    compiles to a single pointer test and performs NO allocation and
 *    NO clock read when the recorder is null (same contract as the
 *    fault hooks, verified by trace_test).
 *
 *  - deterministic export: exporters emit events in a canonical order
 *    (start time, track, name) independent of the append order, so a
 *    restore that fans out over a ThreadPool produces a byte-identical
 *    trace for every thread count.
 *
 * Export formats: Chrome trace_event JSON (load in chrome://tracing or
 * https://ui.perfetto.dev) and the raw event list that ColdStartReport
 * embeds.
 */

#ifndef MEDUSA_COMMON_TRACE_H
#define MEDUSA_COMMON_TRACE_H

#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/types.h"

namespace medusa {

/** Schema version stamped into exported trace JSON. */
inline constexpr u32 kTraceJsonSchemaVersion = 1;

/** One recorded event. Durations are meaningful for kComplete only. */
struct TraceEvent
{
    enum class Phase : u8
    {
        /** A closed span: [start_ns, start_ns + dur_ns). */
        kComplete = 0,
        /** A point-in-time marker (fault fired, cache hit, ...). */
        kInstant,
    };

    std::string name;
    /** Dot-free grouping label ("stage", "restore", "cache", ...). */
    std::string category;
    Phase phase = Phase::kComplete;
    /** Logical track (Chrome tid): 0 = main, TP rank, instance id... */
    u32 track = 0;
    i64 start_ns = 0;
    i64 dur_ns = 0;
    /** Optional key/value annotations (exported as Chrome args). */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Thread-safe event collector with an injected clock; see file comment.
 */
class TraceRecorder
{
  public:
    using ClockFn = std::function<i64()>;

    /** A recorder with no live clock (a merge/export sink): now() = 0. */
    TraceRecorder() = default;

    /** Record against an arbitrary nanosecond clock. */
    explicit TraceRecorder(ClockFn clock) : clock_(std::move(clock)) {}

    /**
     * Record against a SimClock. The clock must outlive the recorder;
     * reads go through SimClock::now() at begin/end time.
     */
    explicit TraceRecorder(const SimClock *clock)
        : clock_([clock]() { return clock->now(); })
    {
    }

    /** A recorder reading the host's monotonic wall clock. */
    static TraceRecorder wallClock();

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /**
     * Open a span at the current clock; returns a handle for endSpan.
     * Spans left open are dropped by events()/export (never half-emitted).
     */
    u64 beginSpan(std::string_view name, std::string_view category = "",
                  u32 track = 0);

    /** Close a span, measuring its duration on the injected clock. */
    void endSpan(u64 handle);

    /** Attach a key/value annotation to an open or closed span. */
    void setArg(u64 handle, std::string_view key, std::string_view value);

    /** Record a point-in-time marker at the current clock. */
    void instant(std::string_view name, std::string_view category = "",
                 u32 track = 0);

    /** Record a pre-timed complete event (event-loop style callers). */
    void complete(std::string_view name, std::string_view category,
                  u32 track, i64 start_ns, i64 dur_ns);

    /** Append one foreign event verbatim (merging sinks). */
    void append(TraceEvent event);

    /**
     * Append a batch of foreign events, shifting each track by
     * @p track_offset — how per-engine or per-rank sub-traces are laid
     * out side by side in one timeline.
     */
    void appendAll(std::span<const TraceEvent> events,
                   u32 track_offset = 0);

    /** Name a track in the exported timeline (Chrome thread_name). */
    void setTrackName(u32 track, std::string name);

    /** Events recorded so far (open spans excluded). */
    std::size_t eventCount() const;

    /** Snapshot of all closed events, in canonical export order. */
    std::vector<TraceEvent> events() const;

    /**
     * Snapshot of closed events appended at index >= @p first (indices
     * follow append order; use eventCount() as the slice mark). The
     * slice is returned in canonical order.
     */
    std::vector<TraceEvent> eventsFrom(std::size_t first) const;

    /** Chrome trace_event JSON of every closed event. */
    std::string toChromeJson() const;

    /** Drop all events (track names are kept). */
    void clear();

  private:
    i64 readClock() const { return clock_ ? clock_() : 0; }

    ClockFn clock_;
    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
    /** Open-span count per handle slot; handle = index into events_. */
    std::vector<bool> open_;
    std::map<u32, std::string> track_names_;
};

/**
 * Sort events into the canonical export order: (start, track, name,
 * longer-span-first). Deterministic for any append interleaving.
 */
void canonicalizeEventOrder(std::vector<TraceEvent> &events);

/**
 * Serialize events to Chrome trace_event JSON:
 * {"displayTimeUnit":"ms","medusa":{"schema_version":1},
 *  "traceEvents":[...]}. Timestamps are emitted in microseconds.
 */
std::string
traceEventsToChromeJson(std::span<const TraceEvent> events,
                        const std::map<u32, std::string> &track_names = {});

/**
 * RAII span against a *nullable* recorder. With a null recorder the
 * constructor and destructor are a pointer test each: no allocation,
 * no clock read, no locking.
 */
class Span
{
  public:
    Span() = default;

    Span(TraceRecorder *recorder, std::string_view name,
         std::string_view category = "", u32 track = 0)
    {
        if (recorder != nullptr) {
            recorder_ = recorder;
            handle_ = recorder->beginSpan(name, category, track);
        }
    }

    ~Span() { end(); }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    Span(Span &&other) noexcept
        : recorder_(other.recorder_), handle_(other.handle_)
    {
        other.recorder_ = nullptr;
    }

    Span &
    operator=(Span &&other) noexcept
    {
        if (this != &other) {
            end();
            recorder_ = other.recorder_;
            handle_ = other.handle_;
            other.recorder_ = nullptr;
        }
        return *this;
    }

    /** Annotate the span (no-op when disabled). */
    void
    arg(std::string_view key, std::string_view value)
    {
        if (recorder_ != nullptr) {
            recorder_->setArg(handle_, key, value);
        }
    }

    /** Close early (idempotent; the destructor then does nothing). */
    void
    end()
    {
        if (recorder_ != nullptr) {
            recorder_->endSpan(handle_);
            recorder_ = nullptr;
        }
    }

  private:
    TraceRecorder *recorder_ = nullptr;
    u64 handle_ = 0;
};

} // namespace medusa

#endif // MEDUSA_COMMON_TRACE_H
