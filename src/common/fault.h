/**
 * @file
 * Deterministic fault injection for the restore stack.
 *
 * A FaultPlan names the restore-stack operations (FaultPoint) that may
 * fail and how: with a per-hit probability, on a specific hit ordinal,
 * or both, capped by a maximum fire count. A FaultInjector executes the
 * plan with one seeded Rng stream per point, so a given (plan, seed)
 * produces the same failures run after run regardless of which other
 * points are exercised in between.
 *
 * Call sites hold a `FaultInjector *` that is null in production —
 * MEDUSA_FAULT_POINT compiles to a single pointer test when injection
 * is disabled, keeping the default restore path bit-identical.
 *
 * Plans come from code, from a compact spec string, from a JSON object,
 * or from the environment:
 *
 *   MEDUSA_FAULT_PLAN='dlsym@3;crc=0.05'       spec form
 *   MEDUSA_FAULT_PLAN='{"seed":7,"rules":[...]}'  JSON form
 *   MEDUSA_FAULT_SEED=7                        seed override
 *
 * Spec entries are separated by ';' or ',': `point=P` fires with
 * probability P per hit; `point@N` fires deterministically on the N-th
 * hit (1-based); `pointxM` caps total fires at M and combines with
 * either form (`dlsym@2x1`). `seed=S` sets the plan seed. Naming the
 * same point twice is an error (the second rule would silently
 * overwrite the first), as is an unknown point name — the error lists
 * every valid name.
 */

#ifndef MEDUSA_COMMON_FAULT_H
#define MEDUSA_COMMON_FAULT_H

#include <array>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace medusa {

/** Restore-stack operations that can be made to fail. */
enum class FaultPoint : u8 {
    /** Artifact byte-stream parse (deserializeView structure decode). */
    kArtifactDeserialize = 0,
    /** Artifact section / graph CRC verification. */
    kArtifactCrc,
    /** ArtifactCache loader outcome (a fetch that dies on the node). */
    kCacheLoader,
    /** Organic allocation-prefix verification after structure init. */
    kReplayPrefix,
    /** One replayed (de)allocation of the recorded sequence. */
    kReplayAlloc,
    /** Kernel resolution through dlsym + cudaGetFuncBySymbol. */
    kKernelDlsym,
    /** Kernel resolution through module enumeration (§5 name table). */
    kKernelEnumeration,
    /** cudaGraphInstantiate of one rebuilt graph. */
    kGraphInstantiate,
    /** One tensor-parallel rank's restore (the rank dies). */
    kTpRankRestore,
    /** Tensor-parallel lockstep validation replay. */
    kTpLockstep,
    /** Cluster-simulator coarse per-cold-start restore outcome. */
    kClusterRestore,
    /** One parallel graph build of restoreGraphs phase 2. */
    kGraphBuild,
    /** v6 image open (structure decode + whole-image CRC). */
    kImageOpen,
    /** One relocation batch of the in-place patch pass (torn patch). */
    kImagePatch,
};

/** Number of distinct fault points. */
inline constexpr std::size_t kFaultPointCount =
    static_cast<std::size_t>(FaultPoint::kImagePatch) + 1;

/** Stable short name ("dlsym", "crc", ...) used by specs and reports. */
const char *faultPointName(FaultPoint point);

/** Reverse of faultPointName; kInvalidArgument on unknown names. */
StatusOr<FaultPoint> faultPointFromName(const std::string &name);

/** How one fault point misbehaves. */
struct FaultRule
{
    /** Per-hit Bernoulli failure probability in [0, 1]. */
    f64 probability = 0;
    /** Fire deterministically on this 1-based hit ordinal (0 = off). */
    u64 fire_on_hit = 0;
    /** Cap on total fires at this point. */
    u64 max_fires = ~0ull;

    bool
    active() const
    {
        return (probability > 0 || fire_on_hit != 0) && max_fires > 0;
    }
};

/** A complete, deterministic failure schedule. */
struct FaultPlan
{
    u64 seed = 0x5eed;
    std::array<FaultRule, kFaultPointCount> rules;

    FaultRule &
    rule(FaultPoint point)
    {
        return rules[static_cast<std::size_t>(point)];
    }
    const FaultRule &
    rule(FaultPoint point) const
    {
        return rules[static_cast<std::size_t>(point)];
    }

    /** True if any rule can ever fire. */
    bool enabled() const;

    /** Parse the compact spec form (see file comment). */
    static StatusOr<FaultPlan> fromSpec(const std::string &spec);

    /**
     * Parse the JSON form:
     * {"seed":7,"rules":[{"point":"dlsym","probability":0.1,
     *  "fire_on_hit":3,"max_fires":1}]}
     * (a self-contained subset parser; no external dependency).
     */
    static StatusOr<FaultPlan> fromJson(const std::string &json);

    /**
     * Build a plan from MEDUSA_FAULT_PLAN (spec or JSON, picked by a
     * leading '{') with MEDUSA_FAULT_SEED overriding the seed.
     * Returns nullopt when the variable is unset or empty.
     */
    static StatusOr<std::optional<FaultPlan>> fromEnv();

    /** Render back to the compact spec form (for logs and reports). */
    std::string toSpec() const;
};

/**
 * Executes a FaultPlan. Thread-safe; deterministic per point in
 * hit-order (each point draws from its own seeded stream).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    /**
     * Register one hit at @p point: returns kFaultInjected when the
     * plan fires there, OK otherwise. @p detail names the operation for
     * the error message.
     */
    Status check(FaultPoint point, const std::string &detail = "");

    /**
     * A deterministic uniform draw in [0, 1) from @p point's stream —
     * used by coarse models (e.g. the cluster simulator's wasted-time
     * fraction) so their randomness replays with the plan.
     */
    f64 drawFraction(FaultPoint point);

    u64 hits(FaultPoint point) const;
    u64 fires(FaultPoint point) const;
    u64 totalFires() const;
    const FaultPlan &plan() const { return plan_; }

    /** Rewind hit counters and rng streams to the plan seed. */
    void reset();

  private:
    FaultPlan plan_;
    mutable std::mutex mu_;
    /** One independent stream per point (Rng is not default-constructible). */
    std::vector<Rng> streams_;
    std::array<u64, kFaultPointCount> hits_{};
    std::array<u64, kFaultPointCount> fires_{};
};

/**
 * The process-wide injector configured from the environment, or null
 * when MEDUSA_FAULT_PLAN is unset/invalid. Built once on first use, so
 * engines can honor the env vars without explicit wiring.
 */
FaultInjector *envFaultInjector();

/** Build an error for an injected fault (kFaultInjected). */
Status faultInjected(std::string msg);

} // namespace medusa

/**
 * Register a hit at @p point on @p injector (may be null) and return
 * the injected error from the enclosing function when the plan fires.
 */
#define MEDUSA_FAULT_POINT(injector, point, detail)                          \
    do {                                                                     \
        if ((injector) != nullptr) {                                         \
            ::medusa::Status medusa_fault_st =                               \
                (injector)->check((point), (detail));                        \
            if (!medusa_fault_st.isOk()) {                                   \
                return medusa_fault_st;                                      \
            }                                                                \
        }                                                                    \
    } while (0)

#endif // MEDUSA_COMMON_FAULT_H
