/**
 * @file
 * Binary serialization for materialized artifacts.
 *
 * Medusa persists the offline-phase output (indirect index pointer table,
 * kernel name table, graph topology, permanent buffer contents, KV-init
 * profile) and loads it during online cold starts. The format is a simple
 * little-endian tagged binary stream with a magic header and version.
 */

#ifndef MEDUSA_COMMON_SERIALIZE_H
#define MEDUSA_COMMON_SERIALIZE_H

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace medusa {

/**
 * Appends primitive values, strings and vectors to a growable byte
 * buffer.
 */
class BinaryWriter
{
  public:
    BinaryWriter() = default;

    void
    writeU8(u8 v)
    {
        buf_.push_back(v);
    }

    void writeU32(u32 v) { writeRaw(&v, sizeof(v)); }
    void writeU64(u64 v) { writeRaw(&v, sizeof(v)); }
    void writeI64(i64 v) { writeRaw(&v, sizeof(v)); }
    void writeF64(f64 v) { writeRaw(&v, sizeof(v)); }
    void writeF32(f32 v) { writeRaw(&v, sizeof(v)); }
    void writeBool(bool v) { writeU8(v ? 1 : 0); }

    void
    writeString(const std::string &s)
    {
        writeU64(s.size());
        writeRaw(s.data(), s.size());
    }

    void
    writeBytes(const std::vector<u8> &bytes)
    {
        writeU64(bytes.size());
        writeRaw(bytes.data(), bytes.size());
    }

    /** Append raw bytes with no length prefix (pre-framed payloads). */
    void writeBytesRaw(const void *data, std::size_t n) { writeRaw(data, n); }

    /** Serialize a vector given a per-element writer functor. */
    template <typename T, typename Fn>
    void
    writeVector(const std::vector<T> &items, Fn &&write_item)
    {
        writeU64(items.size());
        for (const auto &item : items) {
            write_item(*this, item);
        }
    }

    const std::vector<u8> &bytes() const { return buf_; }
    std::vector<u8> takeBytes() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    void
    writeRaw(const void *data, std::size_t n)
    {
        const u8 *p = static_cast<const u8 *>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    std::vector<u8> buf_;
};

/**
 * Reads values back in the order they were written. All read methods
 * return errors (never crash) on truncated input, so a corrupted artifact
 * is reported as a recoverable failure.
 *
 * Two construction modes:
 *  - owning: the reader takes the byte vector by value (convenient for
 *    one-shot loads where the buffer has no other consumer);
 *  - view: the reader borrows a std::span over bytes owned elsewhere —
 *    zero copies, and many readers can decode disjoint sections of one
 *    buffer concurrently. The caller keeps the backing storage alive.
 */
class BinaryReader
{
  public:
    /** Owning mode: adopt the buffer. */
    explicit BinaryReader(std::vector<u8> bytes)
        : owned_(std::move(bytes)), buf_(owned_), pos_(0)
    {
    }

    /** View mode: borrow @p view (no copy; caller owns the bytes). */
    explicit BinaryReader(std::span<const u8> view)
        : buf_(view), pos_(0)
    {
    }

    // The span member points into owned_; default copy/move would leave
    // it dangling.
    BinaryReader(const BinaryReader &) = delete;
    BinaryReader &operator=(const BinaryReader &) = delete;

    StatusOr<u8>
    readU8()
    {
        u8 v{};
        MEDUSA_RETURN_IF_ERROR(readRaw(&v, sizeof(v)));
        return v;
    }

    StatusOr<u32>
    readU32()
    {
        u32 v{};
        MEDUSA_RETURN_IF_ERROR(readRaw(&v, sizeof(v)));
        return v;
    }

    StatusOr<u64>
    readU64()
    {
        u64 v{};
        MEDUSA_RETURN_IF_ERROR(readRaw(&v, sizeof(v)));
        return v;
    }

    StatusOr<i64>
    readI64()
    {
        i64 v{};
        MEDUSA_RETURN_IF_ERROR(readRaw(&v, sizeof(v)));
        return v;
    }

    StatusOr<f64>
    readF64()
    {
        f64 v{};
        MEDUSA_RETURN_IF_ERROR(readRaw(&v, sizeof(v)));
        return v;
    }

    StatusOr<f32>
    readF32()
    {
        f32 v{};
        MEDUSA_RETURN_IF_ERROR(readRaw(&v, sizeof(v)));
        return v;
    }

    StatusOr<bool>
    readBool()
    {
        MEDUSA_ASSIGN_OR_RETURN(u8 v, readU8());
        return v != 0;
    }

    StatusOr<std::string>
    readString()
    {
        MEDUSA_ASSIGN_OR_RETURN(u64 n, readU64());
        if (n > remaining()) {
            return truncated("string");
        }
        std::string s(reinterpret_cast<const char *>(buf_.data() + pos_), n);
        pos_ += n;
        return s;
    }

    StatusOr<std::vector<u8>>
    readBytes()
    {
        MEDUSA_ASSIGN_OR_RETURN(u64 n, readU64());
        if (n > remaining()) {
            return truncated("bytes");
        }
        std::vector<u8> out(buf_.begin() + pos_, buf_.begin() + pos_ + n);
        pos_ += n;
        return out;
    }

    /** Deserialize a vector given a per-element reader functor. */
    template <typename T, typename Fn>
    StatusOr<std::vector<T>>
    readVector(Fn &&read_item)
    {
        MEDUSA_ASSIGN_OR_RETURN(u64 n, readU64());
        if (n > remaining()) {
            // Every element consumes at least one byte; a larger count
            // means a corrupted stream (guards the reserve below).
            return internalError("serialized vector count exceeds data");
        }
        std::vector<T> out;
        out.reserve(static_cast<std::size_t>(n));
        for (u64 i = 0; i < n; ++i) {
            auto item = read_item(*this);
            if (!item.isOk()) {
                return item.status();
            }
            out.push_back(std::move(item).value());
        }
        return out;
    }

    /**
     * Borrow @p n bytes at the cursor without copying (view of the
     * reader's backing storage — valid only while it lives).
     */
    StatusOr<std::span<const u8>>
    viewBytes(std::size_t n)
    {
        if (n > remaining()) {
            return internalError("serialized stream truncated");
        }
        std::span<const u8> out = buf_.subspan(pos_, n);
        pos_ += n;
        return out;
    }

    /** Advance the cursor past @p n bytes without reading them. */
    Status
    skipBytes(std::size_t n)
    {
        if (n > remaining()) {
            return internalError("serialized stream truncated");
        }
        pos_ += n;
        return Status::ok();
    }

    std::size_t remaining() const { return buf_.size() - pos_; }
    std::size_t position() const { return pos_; }
    bool atEnd() const { return pos_ == buf_.size(); }

  private:
    Status
    readRaw(void *out, std::size_t n)
    {
        if (n > remaining()) {
            return internalError("serialized stream truncated");
        }
        std::memcpy(out, buf_.data() + pos_, n);
        pos_ += n;
        return Status::ok();
    }

    Status
    truncated(const char *what)
    {
        return internalError(std::string("serialized stream truncated in ") +
                             what);
    }

    std::vector<u8> owned_;
    std::span<const u8> buf_;
    std::size_t pos_;
};

/** Write a whole byte buffer to a file, creating parent dirs if needed. */
Status writeFile(const std::string &path, const std::vector<u8> &bytes);

/** Read a whole file into a byte buffer. */
StatusOr<std::vector<u8>> readFile(const std::string &path);

} // namespace medusa

#endif // MEDUSA_COMMON_SERIALIZE_H
