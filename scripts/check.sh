#!/usr/bin/env bash
# The repository hygiene gate: formatting, static analysis, sanitizers,
# static artifact verification and a fault-injected test pass (a fixed
# MEDUSA_FAULT_PLAN seed keeps the restore-stack fault hooks live under
# ASan and TSan). Steps whose tools are not installed are skipped with
# a notice, so the script is useful on minimal images.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-check}"
FAILURES=0

note() { printf '\n== %s\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*"; FAILURES=$((FAILURES + 1)); }
skip() { printf 'SKIP: %s\n' "$*"; }

cd "$ROOT" || exit 2
SOURCES=$(git ls-files 'src/**/*.cc' 'src/**/*.h' 'tests/*.cc' \
                       'tools/*.cc' 'examples/*.cpp' 2>/dev/null)

note "clang-format (dry run)"
if command -v clang-format >/dev/null 2>&1; then
    # shellcheck disable=SC2086
    if ! clang-format --dry-run --Werror $SOURCES; then
        fail "clang-format found formatting differences"
    fi
else
    skip "clang-format not installed"
fi

note "configure + build (ASan + UBSan)"
if ! cmake -B "$BUILD" -S "$ROOT" \
        -DMEDUSA_SANITIZE=address,undefined \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null; then
    fail "cmake configure failed"
elif ! cmake --build "$BUILD" -j "$(nproc)" >/dev/null; then
    fail "sanitized build failed"
else
    note "tests under ASan + UBSan"
    if ! ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"; then
        fail "sanitized test run failed"
    fi
fi

note "clang-tidy (src/common, src/medusa)"
if command -v clang-tidy >/dev/null 2>&1; then
    TIDY_SOURCES=$(git ls-files 'src/common/*.cc' 'src/medusa/**/*.cc' \
                                'src/medusa/*.cc')
    # shellcheck disable=SC2086
    if ! clang-tidy -p "$BUILD" --quiet $TIDY_SOURCES; then
        fail "clang-tidy reported diagnostics"
    fi
else
    skip "clang-tidy not installed"
fi

note "medusa_lint over a freshly materialized artifact"
if [ -x "$BUILD/examples/offline_materialize" ] &&
   [ -x "$BUILD/tools/medusa_lint" ]; then
    ARTIFACT="$BUILD/check-artifact.medusa"
    if ! "$BUILD/examples/offline_materialize" Qwen1.5-0.5B \
            "$ARTIFACT" >/dev/null; then
        fail "offline_materialize failed"
    elif ! "$BUILD/tools/medusa_lint" --max-severity info "$ARTIFACT"; then
        # --max-severity info: a pipeline artifact must be clean even
        # of warnings, not just free of errors.
        fail "medusa_lint reported diagnostics on a pipeline artifact"
    elif ! "$BUILD/tools/medusa_lint" --json "$ARTIFACT" \
            > "$BUILD/check-lint.json" ||
         ! "$BUILD/tools/trace_check" --lint "$BUILD/check-lint.json"; then
        fail "medusa_lint --json failed schema validation"
    fi
else
    fail "offline_materialize / medusa_lint binaries missing"
fi

note "trace smoke: one traced cold start, schema-checked exports"
if [ -x "$BUILD/bench/bench_micro" ] && [ -x "$BUILD/tools/trace_check" ]
then
    TRACE_JSON="$BUILD/check-trace.json"
    METRICS_JSON="$BUILD/check-metrics.json"
    if ! "$BUILD/bench/bench_micro" \
            --benchmark_filter=BM_CachingAllocatorReuse \
            --trace-out "$TRACE_JSON" --metrics-out "$METRICS_JSON" \
            >/dev/null 2>&1; then
        fail "traced bench_micro run failed"
    elif ! "$BUILD/tools/trace_check" --chrome "$TRACE_JSON"; then
        fail "exported Chrome trace failed schema validation"
    elif ! "$BUILD/tools/trace_check" --metrics "$METRICS_JSON"; then
        fail "exported metrics JSON failed schema validation"
    fi
else
    fail "bench_micro / trace_check binaries missing"
fi

note "restore-speed smoke: patch path beats rebuild, patch spans traced"
if [ -x "$BUILD/bench/bench_restore_parallel" ] &&
   [ -x "$BUILD/tools/trace_check" ]; then
    BUILD_ABS="$(cd "$BUILD" && pwd)"
    RESTORE_JSON="$BUILD_ABS/check-restore.json"
    RESTORE_TRACE="$BUILD_ABS/check-restore-trace.json"
    # cd: the bench caches materialized artifacts under ./artifacts.
    if ! (cd "$BUILD_ABS" && ./bench/bench_restore_parallel --json \
            --reps=1 --trace-out "$RESTORE_TRACE") > "$RESTORE_JSON"; then
        fail "bench_restore_parallel reported a determinism/fidelity bug"
    else
        SPEEDUP=$(sed -n 's/.*"coldstart_speedup": \([0-9.]*\).*/\1/p' \
                      "$RESTORE_JSON")
        # 1.5 is a smoke floor for sanitized single-rep runs; release
        # numbers (BENCH_restore.json) must clear 5x (DESIGN.md §13).
        if [ -z "$SPEEDUP" ] ||
           ! awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 1.5) }'; then
            fail "coldstart_speedup ${SPEEDUP:-missing} below 1.5x floor"
        fi
        if ! "$BUILD/tools/trace_check" --chrome "$RESTORE_TRACE" \
                --expect restore.image_open \
                --expect restore.patch_pass \
                --expect restore.graphs.patch; then
            fail "patch-pass spans missing from restore trace"
        fi
    fi
else
    fail "bench_restore_parallel / trace_check binaries missing"
fi

note "sim-scale smoke: truncated cluster-scale run, schema-checked"
if [ -x "$BUILD/bench/bench_cluster_scale" ] &&
   [ -x "$BUILD/tools/trace_check" ]; then
    SIM_JSON="$BUILD/check-sim.json"
    # A 10^5-request prefix (10^4 for the legacy oracle) keeps the
    # sanitized smoke inside a tight wall budget; the full
    # million-request study runs unsanitized in scripts/bench.sh.
    if ! timeout 300 "$BUILD/bench/bench_cluster_scale" --json \
            --requests=100000 --legacy-requests=10000 \
            > "$SIM_JSON"; then
        fail "bench_cluster_scale smoke failed or exceeded wall budget"
    elif ! "$BUILD/tools/trace_check" --sim "$SIM_JSON"; then
        fail "BENCH_sim JSON failed schema validation"
    fi
else
    fail "bench_cluster_scale / trace_check binaries missing"
fi

note "chaos smoke: armed ChaosPlan matrix, conservation hard-checked"
if [ -x "$BUILD/bench/bench_chaos" ] && [ -x "$BUILD/tools/trace_check" ]
then
    CHAOS_JSON="$BUILD/check-chaos.json"
    # bench_chaos exits non-zero itself if any matrix cell violates
    # request conservation, if the heaviest cell is not deterministic
    # across reruns, or if a disabled plan perturbs the simulation —
    # all three invariants run under ASan + UBSan here.
    if ! timeout 300 "$BUILD/bench/bench_chaos" --json \
            --requests=20000 > "$CHAOS_JSON"; then
        fail "bench_chaos smoke failed (conservation/determinism)"
    elif ! "$BUILD/tools/trace_check" --sim "$CHAOS_JSON"; then
        fail "BENCH_chaos JSON failed schema validation"
    fi
else
    fail "bench_chaos / trace_check binaries missing"
fi

note "serve smoke: loopback OpenAI front end, streamed + clean drain"
if [ -x "$BUILD/tools/medusa_serve" ] && [ -x "$BUILD/tools/trace_check" ]
then
    SERVE_METRICS="$BUILD/check-serve-metrics.json"
    # --smoke starts the server on an ephemeral loopback port, issues a
    # streamed completion (asserting the SSE frame count), a chat
    # completion, validation-error probes, then drains gracefully and
    # exits non-zero if anything — including request conservation in
    # the final TraceMetrics — went wrong.
    if ! timeout 120 "$BUILD/tools/medusa_serve" --smoke \
            "--metrics-out=$SERVE_METRICS" >/dev/null; then
        fail "medusa_serve --smoke failed (stream/drain)"
    elif ! "$BUILD/tools/trace_check" --metrics "$SERVE_METRICS"; then
        fail "serve metrics failed the closed server.* namespace check"
    fi
else
    fail "medusa_serve / trace_check binaries missing"
fi

note "lint-images: verify every materialized v6 image in the build tree"
if [ -x "$BUILD/tools/medusa_lint" ] && [ -x "$BUILD/tools/trace_check" ]
then
    IMAGES=$(find "$BUILD" -name '*.mdsi' 2>/dev/null)
    if [ -z "$IMAGES" ]; then
        fail "smoke runs produced no .mdsi image to verify"
    else
        for IMG in $IMAGES; do
            # --max-severity info: a shipped image must be clean even of
            # warnings, with every MDL8xx determinism rule silent.
            if ! "$BUILD/tools/medusa_lint" --image --max-severity info \
                    "$IMG" >/dev/null; then
                fail "medusa_lint --image rejected $IMG"
                "$BUILD/tools/medusa_lint" --image "$IMG" || true
            fi
        done
        FIRST=$(printf '%s\n' "$IMAGES" | head -n 1)
        if ! "$BUILD/tools/medusa_lint" --image --sarif "$FIRST" \
                > "$BUILD/check-lint.sarif" ||
           ! "$BUILD/tools/trace_check" --sarif "$BUILD/check-lint.sarif"
        then
            fail "medusa_lint --sarif failed schema validation"
        fi
    fi
else
    fail "medusa_lint / trace_check binaries missing"
fi

note "fault-injected tier-1 suite under ASan (fixed fault seed)"
# An enabled-but-never-firing env plan keeps every MEDUSA_FAULT_POINT
# hook live through the whole suite: the sanitized tier-1 run must
# pass bit-identically with the injector threaded through the restore
# stack. The fault/rollback tests additionally fire their own seeded
# plans.
FAULT_PLAN='replay_prefix@1000000000;seed=20250805'
if [ -d "$BUILD" ]; then
    if ! MEDUSA_FAULT_PLAN="$FAULT_PLAN" \
            ctest --test-dir "$BUILD" --output-on-failure \
            -j "$(nproc)" -R 'Fault|Rollback|MedusaIntegration'; then
        fail "fault-injected ASan test run failed"
    fi
else
    skip "ASan build directory missing"
fi

note "concurrency tests under TSan (MEDUSA_TSAN)"
TSAN_BUILD="$BUILD-tsan"
if ! cmake -B "$TSAN_BUILD" -S "$ROOT" -DMEDUSA_TSAN=ON >/dev/null; then
    fail "TSan cmake configure failed"
elif ! cmake --build "$TSAN_BUILD" -j "$(nproc)" \
        --target restore_parallel_test artifact_cache_test \
                 fault_test rollback_test chaos_test \
        >/dev/null; then
    fail "TSan build failed"
elif ! MEDUSA_FAULT_PLAN='replay_prefix@1000000000;seed=20250805' \
        ctest --test-dir "$TSAN_BUILD" --output-on-failure \
        -j "$(nproc)" \
        -R 'RestoreParallel|ArtifactCache|Fault|Rollback|Chaos'; then
    # The Chaos suite's concurrent-runs test drives the crash-requeue
    # path from two threads sharing a const plan/profile/trace.
    fail "TSan test run failed"
fi

note "summary"
if [ "$FAILURES" -ne 0 ]; then
    echo "$FAILURES check(s) failed"
    exit 1
fi
echo "all checks passed"
