#!/usr/bin/env bash
# Machine-readable bench harness: builds the bench binaries and writes
# BENCH_*.json files at the repo root.
#
#   BENCH_restore.json  — the parallel restore pipeline (parse, cold
#                         start at 1 vs N threads, artifact cache);
#                         exits non-zero if simulated results are not
#                         thread-count independent.
#   BENCH_micro.json    — google-benchmark microbenchmarks of the
#                         substrate hot paths.
#   BENCH_fault.json    — fault matrix: restore fault points × fallback
#                         policies, and §7.5-trace p50/p99 TTFT under
#                         0/1/5% artifact corruption; exits non-zero if
#                         any trace request fails to complete.
#   BENCH_sim.json      — cluster-scale study: fast vs legacy event
#                         engine throughput on the same trace prefix,
#                         and the scheduler-policy sweep (baseline /
#                         keep-alive / artifact-affinity) over a
#                         million-request synthetic trace; exits
#                         non-zero if the engines disagree.
#   BENCH_chaos.json    — chaos / SLO study: scheduler policies ×
#                         chaos intensities (node/instance crashes,
#                         store outages, gray fetches) over a
#                         10^5-request deadline-carrying trace; exits
#                         non-zero if request conservation, rerun
#                         determinism or empty-plan identity breaks.
#   BENCH_serve.json    — serving control plane: a synthetic diurnal
#                         trace replayed through medusa_serve's HTTP
#                         front end on loopback (QPS, virtual TTFT
#                         p50/p99); exits non-zero if request or
#                         token conservation breaks across the
#                         HTTP path.
#
# Usage: scripts/bench.sh [build-dir] [threads]
#   build-dir defaults to ./build, threads to the hardware concurrency.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
THREADS="${2:-0}"

cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" \
    --target bench_restore_parallel bench_micro bench_fault_matrix \
    bench_cluster_scale bench_chaos bench_serve \
    >/dev/null

cd "$ROOT" # bench binaries cache artifacts under ./artifacts

echo "== bench_restore_parallel (threads=$THREADS; 0 = hardware)"
"$BUILD/bench/bench_restore_parallel" --json "--threads=$THREADS" \
    > "$ROOT/BENCH_restore.json"
cat "$ROOT/BENCH_restore.json"

echo "== bench_micro"
"$BUILD/bench/bench_micro" --json \
    --benchmark_min_warmup_time=0.1 > "$ROOT/BENCH_micro.json"
echo "wrote $ROOT/BENCH_micro.json"

echo "== bench_fault_matrix"
"$BUILD/bench/bench_fault_matrix" --json > "$ROOT/BENCH_fault.json"
cat "$ROOT/BENCH_fault.json"

echo "== bench_cluster_scale"
"$BUILD/bench/bench_cluster_scale" --json > "$ROOT/BENCH_sim.json"
cat "$ROOT/BENCH_sim.json"

echo "== bench_chaos"
"$BUILD/bench/bench_chaos" --json > "$ROOT/BENCH_chaos.json"
cat "$ROOT/BENCH_chaos.json"

echo "== bench_serve"
"$BUILD/bench/bench_serve" --json > "$ROOT/BENCH_serve.json"
cat "$ROOT/BENCH_serve.json"
