/**
 * @file
 * The anatomy of one cold start, drawn as an ASCII timeline: where the
 * time goes under vanilla vLLM, what vLLM+ASYNC overlaps, and what
 * Medusa's materialization removes (the paper's Figures 1 and 8 as a
 * terminal visual).
 *
 * Usage:
 *   ./build/examples/coldstart_anatomy [model-name]
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/stats.h"
#include "medusa/offline.h"
#include "medusa/restore.h"

using namespace medusa;

namespace {

void
bar(const char *label, f64 seconds, f64 scale, const char *note = "")
{
    const int width = std::max(
        1, static_cast<int>(seconds * scale + 0.5));
    std::printf("  %-26s %6.2fs |", label, seconds);
    for (int i = 0; i < width; ++i) {
        std::putchar('#');
    }
    std::printf("| %s\n", note);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "Qwen1.5-4B";
    auto model = llm::findModel(name);
    if (!model.isOk()) {
        std::fprintf(stderr, "unknown model %s\n", name.c_str());
        return 1;
    }

    llm::BaselineEngine::Options bopts;
    bopts.model = *model;
    bopts.strategy = llm::Strategy::kVllm;
    auto vllm = llm::BaselineEngine::coldStart(bopts);
    bopts.strategy = llm::Strategy::kVllmAsync;
    auto async = llm::BaselineEngine::coldStart(bopts);

    core::OfflineOptions oopts;
    oopts.model = *model;
    oopts.pipeline.validate = false;
    auto offline = core::materialize(oopts);
    core::MedusaEngine::Options mopts;
    mopts.model = *model;
    auto medusa =
        core::MedusaEngine::coldStart(mopts, offline->artifact);
    if (!vllm.isOk() || !async.isOk() || !medusa.isOk()) {
        std::fprintf(stderr, "cold start failed\n");
        return 1;
    }

    const llm::StageTimes &tv = (*vllm)->coldStartReport().times;
    const llm::StageTimes &tm = (*medusa)->coldStartReport().times;
    const f64 scale = 50.0 / tv.loading; // 50 columns for vLLM total

    std::printf("=== cold start anatomy: %s ===\n\n", name.c_str());
    std::printf("vanilla vLLM (every stage serial, %.2fs):\n",
                tv.loading);
    bar("model structure init", tv.struct_init, scale);
    bar("model weights loading", tv.weights, scale);
    bar("tokenizer loading", tv.tokenizer, scale);
    bar("KV cache initialization", tv.kv_init, scale,
        "<- profiling forwarding");
    bar("CUDA graph capturing", tv.capture, scale,
        "<- 35 x (warm-up + capture)");

    std::printf("\nvLLM+ASYNC (weights || tokenizer+KV-init, %.2fs, "
                "-%.0f%%):\n",
                (*async)->coldStartReport().times.loading,
                100.0 * (1.0 - (*async)->coldStartReport().times.loading / tv.loading));

    std::printf("\nMedusa (%.2fs, -%.0f%%):\n", tm.loading,
                100.0 * (1.0 - tm.loading / tv.loading));
    bar("model structure init", tm.struct_init, scale);
    bar("model weights loading", tm.weights, scale,
        "|| tokenizer + KV restore + replay");
    bar("KV-init restoration", tm.kv_init, scale,
        "<- materialized free-memory value");
    bar("graph restoration", tm.capture, scale,
        "<- first-layer capture + patch + instantiate");

    std::printf("\nwhat the artifact replaced:\n");
    std::printf("  - profiling forwarding  -> one stored integer "
                "(free GPU memory: %s)\n",
                formatBytes(offline->artifact.free_gpu_memory).c_str());
    std::printf("  - 35 graph captures     -> %llu materialized nodes, "
                "restored via indirect index pointers\n",
                static_cast<unsigned long long>(
                    offline->artifact.totalNodes()));
    std::printf("  - kernel addresses      -> %llu names resolved via "
                "dlsym, %llu via first-layer triggering-kernels\n",
                static_cast<unsigned long long>(
                    (*medusa)->coldStartReport().restore.kernels_via_dlsym),
                static_cast<unsigned long long>(
                    (*medusa)->coldStartReport().restore.kernels_via_enumeration));
    std::printf("  - buffer contents       -> only %llu bytes of "
                "permanent buffers (copy-free restoration)\n",
                static_cast<unsigned long long>(
                    (*medusa)->coldStartReport().restore.restored_content_bytes));
    return 0;
}
