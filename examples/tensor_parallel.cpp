/**
 * @file
 * The §8 multi-GPU extension in action: materialize a tensor-parallel
 * (TP=2) deployment per rank, restore it in fresh processes, and
 * lockstep-replay a decode step whose all-reduce collectives the
 * replayer executes across ranks.
 *
 * Usage:
 *   ./build/examples/tensor_parallel [model-name]
 * (the model's head and intermediate dims must divide by 2;
 *  Falcon-7B's 71 heads do not)
 */

#include <cstdio>
#include <string>

#include "medusa/tp.h"

using namespace medusa;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "Llama2-7B";
    auto model = llm::findModel(name);
    if (!model.isOk()) {
        std::fprintf(stderr, "unknown model %s\n", name.c_str());
        return 1;
    }
    if (model->heads % 2 != 0) {
        std::fprintf(stderr,
                     "%s has %u heads; pick a model divisible by 2\n",
                     name.c_str(), model->heads);
        return 1;
    }
    // Keep the demo snappy: a few layers, a few batch sizes.
    model->num_layers = std::min<u32>(model->num_layers, 6);

    std::printf("=== Medusa x tensor parallelism (%s, %u layers, TP=2) "
                "===\n\n",
                name.c_str(), model->num_layers);

    core::TpOfflineOptions oopts;
    oopts.model = *model;
    oopts.world = 2;
    oopts.batch_sizes = {1, 8, 64};
    auto offline = core::materializeTp(oopts);
    if (!offline.isOk()) {
        std::fprintf(stderr, "offline phase failed: %s\n",
                     offline.status().toString().c_str());
        return 1;
    }
    for (u32 r = 0; r < 2; ++r) {
        const auto &a = offline->rank_artifacts[r];
        u64 collectives = 0;
        for (const auto &g : a.graphs) {
            for (const auto &n : g.nodes) {
                if (n.kernel_name.find("all_reduce") !=
                    std::string::npos) {
                    ++collectives;
                }
            }
        }
        std::printf("rank %u artifact: %llu nodes across %zu graphs "
                    "(%llu all-reduce nodes), %zu KiB\n",
                    r, static_cast<unsigned long long>(a.totalNodes()),
                    a.graphs.size(),
                    static_cast<unsigned long long>(collectives),
                    a.serialize().size() / 1024);
    }

    core::TpMedusaEngine::Options mopts;
    mopts.model = *model;
    mopts.world = 2;
    mopts.aslr_seed = 0xdead;
    mopts.restore.pipeline.validate = true;
    mopts.restore.pipeline.validate_batch_sizes = {1, 64};
    auto engine = core::TpMedusaEngine::coldStart(
        mopts, offline->rank_artifacts);
    if (!engine.isOk()) {
        std::fprintf(stderr, "online restore failed: %s\n",
                     engine.status().toString().c_str());
        return 1;
    }
    std::printf("\nonline: restored and validated against a reference "
                "cluster (bit-exact), loading %.2f s\n",
                (*engine)->coldStartReport().loadingSec());

    // Run one lockstep decode step end-to-end.
    auto st = (*engine)->cluster().stageValidationState(8);
    if (!st.isOk()) {
        std::fprintf(stderr, "staging failed\n");
        return 1;
    }
    auto logits = (*engine)->cluster().lockstepDecodeLogits(8);
    if (!logits.isOk()) {
        std::fprintf(stderr, "lockstep decode failed: %s\n",
                     logits.status().toString().c_str());
        return 1;
    }
    f64 mag = 0;
    for (f32 v : *logits) {
        mag += v > 0 ? v : -v;
    }
    std::printf("lockstep decode at bs=8: %zu logits, mean |logit| = "
                "%.4f\n",
                logits->size(),
                mag / static_cast<f64>(logits->size()));
    std::printf("\nthe replayer played NCCL: every all-reduce node "
                "gathered both ranks' partial\nprojections, summed "
                "them, and scattered the result back.\n");
    return 0;
}
