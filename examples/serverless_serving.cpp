/**
 * @file
 * A serverless serving scenario: a bursty ShareGPT-like request stream
 * hits a 4-GPU cluster; instances cold-start on demand and are
 * reclaimed when idle. Compares the four strategies of the paper's §7
 * and prints the TTFT distribution each one delivers.
 *
 * Usage:
 *   ./build/examples/serverless_serving [model-name] [rps] [seconds]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "medusa/offline.h"
#include "serverless/cluster.h"

using namespace medusa;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "Qwen1.5-1.8B";
    const f64 rps = argc > 2 ? std::atof(argv[2]) : 4.0;
    const f64 duration = argc > 3 ? std::atof(argv[3]) : 600.0;

    auto model = llm::findModel(name);
    if (!model.isOk()) {
        std::fprintf(stderr, "unknown model %s\n", name.c_str());
        return 1;
    }

    std::printf("materializing %s for the Medusa strategy ...\n",
                name.c_str());
    core::OfflineOptions oopts;
    oopts.model = *model;
    oopts.pipeline.validate = false;
    auto offline = core::materialize(oopts);
    if (!offline.isOk()) {
        std::fprintf(stderr, "offline phase failed: %s\n",
                     offline.status().toString().c_str());
        return 1;
    }

    workload::TraceOptions topts;
    topts.requests_per_sec = rps;
    topts.duration_sec = duration;
    topts.seed = 42;
    const auto trace = workload::generateShareGptTrace(topts);
    std::printf("trace: %zu requests over %.0f s (mean prompt %.0f, "
                "mean output %.0f tokens), bursty arrivals\n\n",
                trace.size(), duration,
                workload::meanPromptLength(trace),
                workload::meanOutputLength(trace));

    std::printf("%-16s %9s %9s %9s %9s %7s\n", "strategy", "load(s)",
                "p50(s)", "p99(s)", "mean(s)", "colds");
    for (llm::Strategy strategy :
         {llm::Strategy::kVllm, llm::Strategy::kVllmAsync,
          llm::Strategy::kNoCudaGraph, llm::Strategy::kMedusa}) {
        serverless::ProfileOptions popts;
        popts.model = *model;
        popts.strategy = strategy;
        popts.artifact = &offline->artifact;
        auto profile = serverless::buildServingProfile(popts);
        if (!profile.isOk()) {
            std::fprintf(stderr, "profile failed: %s\n",
                         profile.status().toString().c_str());
            return 1;
        }
        serverless::ClusterOptions copts;
        copts.profile = &*profile;
        const auto metrics = serverless::simulateCluster(copts, trace);
        std::printf("%-16s %9.2f %9.3f %9.3f %9.3f %7llu\n",
                    llm::strategyName(strategy), profile->loading_sec,
                    metrics.ttft_sec.p50(), metrics.ttft_sec.p99(),
                    metrics.ttft_sec.mean(),
                    static_cast<unsigned long long>(
                        metrics.cold_starts));
    }
    std::printf("\nTTFT = time to first token, including queueing and "
                "any cold start the request waited on.\n");
    return 0;
}
