/**
 * @file
 * The offline phase as a standalone tool: materialize the CUDA graphs
 * and KV-cache initialization state for a model and write the artifact
 * to disk — the per-<GPU type, model> step a provider runs once before
 * deploying a serverless endpoint.
 *
 * Usage:
 *   ./build/examples/offline_materialize [model-name] [output-path]
 * Defaults: Qwen1.5-1.8B, artifacts/<model>.medusa
 */

#include <cstdio>
#include <string>

#include "common/serialize.h"
#include "common/stats.h"
#include "medusa/offline.h"

using namespace medusa;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "Qwen1.5-1.8B";
    auto model = llm::findModel(name);
    if (!model.isOk()) {
        std::fprintf(stderr, "unknown model %s; available:\n",
                     name.c_str());
        for (const auto &m : llm::modelZoo()) {
            std::fprintf(stderr, "  %s\n", m.name.c_str());
        }
        return 1;
    }
    const std::string path =
        argc > 2 ? argv[2] : "artifacts/" + name + ".medusa";

    std::printf("materializing %s ...\n", name.c_str());
    core::OfflineOptions opts;
    opts.model = *model;
    opts.pipeline.validate = true; // dry-run the online phase before shipping
    auto result = core::materialize(opts);
    if (!result.isOk()) {
        std::fprintf(stderr, "offline phase failed: %s\n",
                     result.status().toString().c_str());
        return 1;
    }

    const core::Artifact &a = result->artifact;
    const auto bytes = a.serialize();
    if (Status st = writeFile(path, bytes); !st.isOk()) {
        std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                     st.toString().c_str());
        return 1;
    }

    // The v6 relocation image rides along: it is what the online patch
    // path opens (and what `medusa_lint --image` verifies).
    const std::string image_path = path + ".mdsi";
    if (Status st = writeFile(image_path, result->image_bytes);
        !st.isOk()) {
        std::fprintf(stderr, "cannot write %s: %s\n", image_path.c_str(),
                     st.toString().c_str());
        return 1;
    }

    std::printf("\nwrote %s (%.2f MiB)\n", path.c_str(),
                static_cast<f64>(bytes.size()) /
                    static_cast<f64>(units::MiB));
    std::printf("wrote %s (%.2f MiB v6 image)\n", image_path.c_str(),
                static_cast<f64>(result->image_bytes.size()) /
                    static_cast<f64>(units::MiB));
    std::printf("offline phase:    %.1f virtual s (capturing %.1f, "
                "analysis %.1f)\n",
                result->totalOffline(), result->capture_stage_sec,
                result->analysis_stage_sec);
    std::printf("graphs:           %zu batch sizes, %llu nodes total\n",
                a.graphs.size(),
                static_cast<unsigned long long>(a.totalNodes()));
    std::printf("free GPU memory:  %s (materialized KV-init value)\n",
                formatBytes(a.free_gpu_memory).c_str());
    std::printf("alloc sequence:   %zu ops (%llu organic)\n",
                a.ops.size(),
                static_cast<unsigned long long>(a.organic_op_count));
    const auto &s = a.stats;
    std::printf("params:           %llu pointers, %llu constants, "
                "%llu decoys demoted, %llu repairs\n",
                static_cast<unsigned long long>(s.pointer_params),
                static_cast<unsigned long long>(s.constant_params),
                static_cast<unsigned long long>(s.decoy_candidates),
                static_cast<unsigned long long>(s.validation_repairs));
    std::printf("kernels:          %llu dlsym-visible nodes, %llu "
                "hidden (need triggering-kernels)\n",
                static_cast<unsigned long long>(s.dlsym_visible_nodes),
                static_cast<unsigned long long>(s.hidden_kernel_nodes));
    std::printf("buffer contents:  %llu bytes in %llu permanent "
                "buffers (copy-free: %llu model-param + %llu temp "
                "buffers skipped)\n",
                static_cast<unsigned long long>(
                    s.materialized_content_bytes),
                static_cast<unsigned long long>(s.permanent_buffers),
                static_cast<unsigned long long>(s.model_param_buffers),
                static_cast<unsigned long long>(s.temp_buffers));
    std::printf("validation:       online dry-run passed\n");
    return 0;
}
