/**
 * @file
 * Quickstart: cold-start a serving engine twice — the vanilla vLLM way
 * and the Medusa way (offline materialization + online restoration) —
 * then serve a prompt end to end (tokenize, generate, detokenize) and
 * show that the outputs are identical while the Medusa cold start is
 * much faster.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "llm/engine.h"
#include "medusa/offline.h"
#include "medusa/restore.h"

using namespace medusa;

namespace {

template <typename T>
T
orDie(StatusOr<T> value, const char *what)
{
    if (!value.isOk()) {
        std::fprintf(stderr, "%s: %s\n", what,
                     value.status().toString().c_str());
        std::exit(1);
    }
    return std::move(value).value();
}

} // namespace

int
main()
{
    // A small model keeps the demo snappy; swap in any zoo name from
    // llm::modelZoo() (e.g. "Llama2-7B") for the full experience.
    auto model = orDie(llm::findModel("Qwen1.5-0.5B"), "findModel");
    std::printf("model: %s (%u layers, %s arch)\n\n", model.name.c_str(),
                model.num_layers, llm::archName(model.arch));

    // ---- 1. vanilla vLLM cold start --------------------------------
    llm::BaselineEngine::Options bopts;
    bopts.model = model;
    bopts.strategy = llm::Strategy::kVllm;
    auto vllm = orDie(llm::BaselineEngine::coldStart(bopts),
                      "vLLM cold start");
    std::printf("vLLM loading phase:   %.2f virtual seconds\n",
                vllm->coldStartReport().times.loading);

    // ---- 2. Medusa: materialize offline, restore online -------------
    core::OfflineOptions oopts;
    oopts.model = model;
    auto offline = orDie(core::materialize(oopts), "offline phase");
    std::printf("offline phase:        %.1f s (capturing %.1f s + "
                "analysis %.1f s), artifact %zu KiB\n",
                offline.totalOffline(), offline.capture_stage_sec,
                offline.analysis_stage_sec,
                offline.artifact.serialize().size() / 1024);

    core::MedusaEngine::Options mopts;
    mopts.model = model;
    mopts.aslr_seed = 0xf5e5; // a different process address layout
    auto medusa = orDie(
        core::MedusaEngine::coldStart(mopts, offline.artifact),
        "Medusa cold start");
    std::printf("Medusa loading phase: %.2f virtual seconds "
                "(-%.1f%%)\n\n",
                medusa->coldStartReport().times.loading,
                100.0 * (1.0 - medusa->coldStartReport().times.loading /
                                   vllm->coldStartReport().times.loading));

    // ---- 3. serve a prompt on both engines ---------------------------
    const std::string prompt = "serverless inference cold start";
    const std::vector<i32> prompt_ids =
        medusa->runtime().tokenizer().encode(prompt);
    std::printf("prompt: \"%s\" -> %zu tokens\n", prompt.c_str(),
                prompt_ids.size());

    auto vllm_out = orDie(vllm->runtime().generate(prompt_ids, 16),
                          "vLLM generate");
    auto medusa_out = orDie(medusa->runtime().generate(prompt_ids, 16),
                            "Medusa generate");

    std::printf("generated %zu tokens; outputs identical: %s\n",
                medusa_out.size(),
                vllm_out == medusa_out ? "yes" : "NO (bug!)");
    std::printf("restored graphs: %llu nodes across %llu batch sizes\n",
                static_cast<unsigned long long>(
                    medusa->coldStartReport().restore.nodes_restored),
                static_cast<unsigned long long>(
                    medusa->coldStartReport().restore.graphs_restored));
    return 0;
}
